//! Availability mechanisms (paper §3.1.2).
//!
//! Mechanisms are "configurable operators that specify or modify the values
//! of other attributes of the design". A maintenance contract turns its
//! `level` parameter into component repair times; a checkpoint mechanism
//! turns its `checkpoint_interval` parameter into the application's loss
//! window. Mechanisms are specified independently of components and applied
//! per component at design time.

use aved_units::{Duration, Money};
use serde::{Deserialize, Serialize};

use crate::{MechanismName, ModelError, ParamName};

/// The domain of one mechanism configuration parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamRange {
    /// A finite list of named levels (`[bronze,silver,gold,platinum]`,
    /// `[central,peer]`).
    Levels(Vec<String>),
    /// A geometric progression of durations (`[1m-24h;*1.05]`): `min`,
    /// `min·factor`, `min·factor²`, … up to and including the last value
    /// `<= max` (and `max` itself if the progression overshoots it by less
    /// than one step).
    GeometricDuration {
        /// Smallest value.
        min: Duration,
        /// Largest value.
        max: Duration,
        /// Multiplicative step, `> 1`.
        factor: f64,
    },
}

impl ParamRange {
    /// Enumerates the values in this range, for design-space search.
    #[must_use]
    pub fn values(&self) -> Vec<ParamValue> {
        match self {
            ParamRange::Levels(levels) => levels
                .iter()
                .map(|l| ParamValue::Level(l.clone()))
                .collect(),
            ParamRange::GeometricDuration { min, max, factor } => {
                let mut out = Vec::new();
                let mut v = min.seconds();
                let maxs = max.seconds();
                // Guard against degenerate ranges producing an infinite
                // loop: factor <= 1 never advances, and a zero min stays
                // zero under multiplication. The parser rejects both, but
                // ranges can also be built or deserialized directly.
                let factor = factor.max(1.0 + 1e-9);
                while v <= maxs * (1.0 + 1e-12) {
                    out.push(ParamValue::Duration(Duration::from_secs(v.min(maxs))));
                    if v <= 0.0 {
                        break;
                    }
                    v *= factor;
                }
                out
            }
        }
    }

    /// Number of values in this range.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            ParamRange::Levels(l) => l.len(),
            ParamRange::GeometricDuration { .. } => self.values().len(),
        }
    }

    /// Whether the range is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `value` lies in this range.
    ///
    /// For geometric ranges, any duration within `[min, max]` is accepted
    /// (the progression defines search granularity, not legality).
    #[must_use]
    pub fn contains(&self, value: &ParamValue) -> bool {
        match (self, value) {
            (ParamRange::Levels(levels), ParamValue::Level(l)) => levels.iter().any(|x| x == l),
            (ParamRange::GeometricDuration { min, max, .. }, ParamValue::Duration(d)) => {
                *d >= *min && *d <= *max
            }
            _ => false,
        }
    }

    /// The index of a level value within a `Levels` range (used to index
    /// effect tables).
    #[must_use]
    pub fn level_index(&self, value: &ParamValue) -> Option<usize> {
        match (self, value) {
            (ParamRange::Levels(levels), ParamValue::Level(l)) => {
                levels.iter().position(|x| x == l)
            }
            _ => None,
        }
    }
}

/// A concrete setting for a mechanism parameter.
#[derive(Debug, Clone, PartialEq, PartialOrd, Serialize, Deserialize)]
pub enum ParamValue {
    /// A named level (`gold`, `peer`, ...).
    Level(String),
    /// A duration (checkpoint interval).
    Duration(Duration),
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamValue::Level(l) => f.write_str(l),
            ParamValue::Duration(d) => write!(f, "{d}"),
        }
    }
}

/// A named, ranged mechanism configuration parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Parameter {
    name: ParamName,
    range: ParamRange,
}

impl Parameter {
    /// Creates a parameter.
    pub fn new<N: Into<ParamName>>(name: N, range: ParamRange) -> Parameter {
        Parameter {
            name: name.into(),
            range,
        }
    }

    /// The parameter's name.
    #[must_use]
    pub fn name(&self) -> &ParamName {
        &self.name
    }

    /// The parameter's range.
    #[must_use]
    pub fn range(&self) -> &ParamRange {
        &self.range
    }
}

/// How a mechanism produces a duration-valued attribute (MTTR, loss window)
/// from its parameter settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EffectValue {
    /// A table indexed by a `Levels` parameter:
    /// `mttr(level)=[38h 15h 8h 6h]`.
    Table {
        /// The level parameter selecting the table entry.
        param: ParamName,
        /// One duration per level in the parameter's range.
        values: Vec<Duration>,
    },
    /// The value of a duration parameter itself:
    /// `loss_window=checkpoint_interval`.
    Param(ParamName),
}

/// The annual cost of using a mechanism.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MechanismCost {
    /// A flat annual cost, independent of parameters.
    Fixed(Money),
    /// A per-level cost table: `cost(level)=[380 580 760 1500]`.
    ///
    /// Maintenance-contract costs are *per covered machine*: the design cost
    /// model multiplies the entry by the number of component instances the
    /// mechanism is applied to (the paper: "the cost of a maintenance
    /// contract is proportional to the number of machines it covers").
    Table {
        /// The level parameter selecting the table entry.
        param: ParamName,
        /// One annual cost per level in the parameter's range.
        values: Vec<Money>,
    },
}

/// A configurable availability mechanism.
///
/// # Examples
///
/// ```
/// use aved_model::{Mechanism, Parameter, ParamRange, EffectValue};
/// use aved_units::{Duration, Money};
///
/// let maintenance = Mechanism::new("maintenanceA")
///     .with_param(Parameter::new(
///         "level",
///         ParamRange::Levels(vec!["bronze".into(), "silver".into(), "gold".into(), "platinum".into()]),
///     ))
///     .with_cost_table("level", vec![
///         Money::from_dollars(380.0),
///         Money::from_dollars(580.0),
///         Money::from_dollars(760.0),
///         Money::from_dollars(1500.0),
///     ])
///     .with_mttr_effect(EffectValue::Table {
///         param: "level".into(),
///         values: vec![
///             Duration::from_hours(38.0),
///             Duration::from_hours(15.0),
///             Duration::from_hours(8.0),
///             Duration::from_hours(6.0),
///         ],
///     });
/// assert_eq!(maintenance.params().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mechanism {
    name: MechanismName,
    params: Vec<Parameter>,
    cost: MechanismCost,
    mtbf: Option<EffectValue>,
    mttr: Option<EffectValue>,
    loss_window: Option<EffectValue>,
}

impl Mechanism {
    /// Creates a mechanism with no parameters and zero cost.
    pub fn new<N: Into<MechanismName>>(name: N) -> Mechanism {
        Mechanism {
            name: name.into(),
            params: Vec::new(),
            cost: MechanismCost::Fixed(Money::ZERO),
            mtbf: None,
            mttr: None,
            loss_window: None,
        }
    }

    /// Adds a configuration parameter.
    #[must_use]
    pub fn with_param(mut self, p: Parameter) -> Mechanism {
        self.params.push(p);
        self
    }

    /// Sets a flat annual cost.
    #[must_use]
    pub fn with_fixed_cost(mut self, cost: Money) -> Mechanism {
        self.cost = MechanismCost::Fixed(cost);
        self
    }

    /// Sets a per-level annual cost table.
    #[must_use]
    pub fn with_cost_table<N: Into<ParamName>>(
        mut self,
        param: N,
        values: Vec<Money>,
    ) -> Mechanism {
        self.cost = MechanismCost::Table {
            param: param.into(),
            values,
        };
        self
    }

    /// Declares the MTBF effect of this mechanism (e.g. software
    /// rejuvenation setting the effective MTBF per configured interval).
    #[must_use]
    pub fn with_mtbf_effect(mut self, effect: EffectValue) -> Mechanism {
        self.mtbf = Some(effect);
        self
    }

    /// Declares the MTTR effect of this mechanism.
    #[must_use]
    pub fn with_mttr_effect(mut self, effect: EffectValue) -> Mechanism {
        self.mttr = Some(effect);
        self
    }

    /// Declares the loss-window effect of this mechanism.
    #[must_use]
    pub fn with_loss_window_effect(mut self, effect: EffectValue) -> Mechanism {
        self.loss_window = Some(effect);
        self
    }

    /// The mechanism's name.
    #[must_use]
    pub fn name(&self) -> &MechanismName {
        &self.name
    }

    /// The configuration parameters.
    #[must_use]
    pub fn params(&self) -> &[Parameter] {
        &self.params
    }

    /// Looks up a parameter by name.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<&Parameter> {
        self.params.iter().find(|p| p.name().as_str() == name)
    }

    /// The cost specification.
    #[must_use]
    pub fn cost_spec(&self) -> &MechanismCost {
        &self.cost
    }

    /// The MTBF effect, if declared.
    #[must_use]
    pub fn mtbf_effect(&self) -> Option<&EffectValue> {
        self.mtbf.as_ref()
    }

    /// The MTTR effect, if declared.
    #[must_use]
    pub fn mttr_effect(&self) -> Option<&EffectValue> {
        self.mttr.as_ref()
    }

    /// The loss-window effect, if declared.
    #[must_use]
    pub fn loss_window_effect(&self) -> Option<&EffectValue> {
        self.loss_window.as_ref()
    }

    /// Resolves the mechanism's annual cost (per covered instance for
    /// per-level tables) under the given parameter settings.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::MissingSetting`] if a required parameter is
    /// unset, or [`ModelError::ValueOutOfRange`] for a setting outside its
    /// range.
    pub fn resolve_cost(&self, settings: &impl Settings) -> Result<Money, ModelError> {
        match &self.cost {
            MechanismCost::Fixed(m) => Ok(*m),
            MechanismCost::Table { param, values } => {
                let idx = self.level_index(param, settings)?;
                Ok(values[idx])
            }
        }
    }

    /// Resolves an effect to a duration under the given settings.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] for missing or out-of-range settings, or a
    /// type mismatch (a duration effect driven by a level parameter).
    pub fn resolve_effect(
        &self,
        effect: &EffectValue,
        settings: &impl Settings,
    ) -> Result<Duration, ModelError> {
        match effect {
            EffectValue::Table { param, values } => {
                let idx = self.level_index(param, settings)?;
                Ok(values[idx])
            }
            EffectValue::Param(param) => {
                let value =
                    settings
                        .get(self.name(), param)
                        .ok_or_else(|| ModelError::MissingSetting {
                            mechanism: self.name.to_string(),
                            param: param.to_string(),
                        })?;
                match value {
                    ParamValue::Duration(d) => Ok(d),
                    ParamValue::Level(l) => Err(ModelError::ValueOutOfRange {
                        mechanism: self.name.to_string(),
                        param: param.to_string(),
                        value: l,
                    }),
                }
            }
        }
    }

    /// Resolves the MTBF effect; `Ok(None)` when not declared.
    ///
    /// # Errors
    ///
    /// See [`resolve_effect`](Self::resolve_effect).
    pub fn resolve_mtbf(&self, settings: &impl Settings) -> Result<Option<Duration>, ModelError> {
        self.mtbf
            .as_ref()
            .map(|e| self.resolve_effect(e, settings))
            .transpose()
    }

    /// Resolves the MTTR effect; `Ok(None)` when the mechanism declares no
    /// MTTR effect.
    ///
    /// # Errors
    ///
    /// See [`resolve_effect`](Self::resolve_effect).
    pub fn resolve_mttr(&self, settings: &impl Settings) -> Result<Option<Duration>, ModelError> {
        self.mttr
            .as_ref()
            .map(|e| self.resolve_effect(e, settings))
            .transpose()
    }

    /// Resolves the loss-window effect; `Ok(None)` when not declared.
    ///
    /// # Errors
    ///
    /// See [`resolve_effect`](Self::resolve_effect).
    pub fn resolve_loss_window(
        &self,
        settings: &impl Settings,
    ) -> Result<Option<Duration>, ModelError> {
        self.loss_window
            .as_ref()
            .map(|e| self.resolve_effect(e, settings))
            .transpose()
    }

    fn level_index(
        &self,
        param: &ParamName,
        settings: &impl Settings,
    ) -> Result<usize, ModelError> {
        let p = self
            .param(param.as_str())
            .ok_or_else(|| ModelError::UnknownParameter {
                mechanism: self.name.to_string(),
                param: param.to_string(),
            })?;
        let value = settings
            .get(self.name(), param)
            .ok_or_else(|| ModelError::MissingSetting {
                mechanism: self.name.to_string(),
                param: param.to_string(),
            })?;
        p.range()
            .level_index(&value)
            .ok_or_else(|| ModelError::ValueOutOfRange {
                mechanism: self.name.to_string(),
                param: param.to_string(),
                value: value.to_string(),
            })
    }
}

/// A source of mechanism parameter settings (implemented by design types).
pub trait Settings {
    /// The value assigned to `param` of `mechanism`, if any.
    fn get(&self, mechanism: &MechanismName, param: &ParamName) -> Option<ParamValue>;
}

impl Settings for std::collections::BTreeMap<(MechanismName, ParamName), ParamValue> {
    fn get(&self, mechanism: &MechanismName, param: &ParamName) -> Option<ParamValue> {
        self.get(&(mechanism.clone(), param.clone())).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn maintenance() -> Mechanism {
        Mechanism::new("maintenanceA")
            .with_param(Parameter::new(
                "level",
                ParamRange::Levels(vec![
                    "bronze".into(),
                    "silver".into(),
                    "gold".into(),
                    "platinum".into(),
                ]),
            ))
            .with_cost_table(
                "level",
                vec![
                    Money::from_dollars(380.0),
                    Money::from_dollars(580.0),
                    Money::from_dollars(760.0),
                    Money::from_dollars(1500.0),
                ],
            )
            .with_mttr_effect(EffectValue::Table {
                param: "level".into(),
                values: vec![
                    Duration::from_hours(38.0),
                    Duration::from_hours(15.0),
                    Duration::from_hours(8.0),
                    Duration::from_hours(6.0),
                ],
            })
    }

    fn settings_with(level: &str) -> BTreeMap<(MechanismName, ParamName), ParamValue> {
        let mut s = BTreeMap::new();
        s.insert(
            (MechanismName::new("maintenanceA"), ParamName::new("level")),
            ParamValue::Level(level.to_owned()),
        );
        s
    }

    #[test]
    fn resolves_cost_and_mttr_by_level() {
        let m = maintenance();
        let s = settings_with("gold");
        assert_eq!(m.resolve_cost(&s).unwrap(), Money::from_dollars(760.0));
        assert_eq!(m.resolve_mttr(&s).unwrap(), Some(Duration::from_hours(8.0)));
    }

    #[test]
    fn missing_setting_is_reported() {
        let m = maintenance();
        let s: BTreeMap<(MechanismName, ParamName), ParamValue> = BTreeMap::new();
        assert!(matches!(
            m.resolve_cost(&s),
            Err(ModelError::MissingSetting { .. })
        ));
    }

    #[test]
    fn out_of_range_level_is_reported() {
        let m = maintenance();
        let s = settings_with("diamond");
        assert!(matches!(
            m.resolve_cost(&s),
            Err(ModelError::ValueOutOfRange { .. })
        ));
    }

    #[test]
    fn checkpoint_loss_window_follows_interval_param() {
        let m = Mechanism::new("checkpoint")
            .with_param(Parameter::new(
                "checkpoint_interval",
                ParamRange::GeometricDuration {
                    min: Duration::from_mins(1.0),
                    max: Duration::from_hours(24.0),
                    factor: 1.05,
                },
            ))
            .with_loss_window_effect(EffectValue::Param("checkpoint_interval".into()));
        let mut s = BTreeMap::new();
        s.insert(
            (
                MechanismName::new("checkpoint"),
                ParamName::new("checkpoint_interval"),
            ),
            ParamValue::Duration(Duration::from_mins(30.0)),
        );
        assert_eq!(
            m.resolve_loss_window(&s).unwrap(),
            Some(Duration::from_mins(30.0))
        );
        assert_eq!(m.resolve_mttr(&s).unwrap(), None);
    }

    #[test]
    fn geometric_range_enumerates_progression() {
        let r = ParamRange::GeometricDuration {
            min: Duration::from_mins(1.0),
            max: Duration::from_mins(2.0),
            factor: 1.5,
        };
        let vals = r.values();
        // 1m, 1.5m (2.25m exceeds max)
        assert_eq!(vals.len(), 2);
        assert_eq!(vals[0], ParamValue::Duration(Duration::from_mins(1.0)));
        assert_eq!(vals[1], ParamValue::Duration(Duration::from_secs(90.0)));
    }

    #[test]
    fn zero_min_geometric_range_terminates() {
        // 0 * factor = 0: without the guard this loops forever.
        let r = ParamRange::GeometricDuration {
            min: Duration::ZERO,
            max: Duration::from_hours(24.0),
            factor: 1.05,
        };
        assert_eq!(r.values(), vec![ParamValue::Duration(Duration::ZERO)]);
    }

    #[test]
    fn paper_checkpoint_range_size() {
        // [1m-24h;*1.05]: 1440x span, log(1440)/log(1.05) ~ 149 steps.
        let r = ParamRange::GeometricDuration {
            min: Duration::from_mins(1.0),
            max: Duration::from_hours(24.0),
            factor: 1.05,
        };
        let n = r.len();
        assert!((140..160).contains(&n), "got {n}");
    }

    #[test]
    fn range_contains() {
        let levels = ParamRange::Levels(vec!["a".into(), "b".into()]);
        assert!(levels.contains(&ParamValue::Level("a".into())));
        assert!(!levels.contains(&ParamValue::Level("c".into())));
        assert!(!levels.contains(&ParamValue::Duration(Duration::ZERO)));

        let geo = ParamRange::GeometricDuration {
            min: Duration::from_mins(1.0),
            max: Duration::from_hours(1.0),
            factor: 2.0,
        };
        assert!(geo.contains(&ParamValue::Duration(Duration::from_mins(7.0))));
        assert!(!geo.contains(&ParamValue::Duration(Duration::from_secs(10.0))));
        assert!(!geo.contains(&ParamValue::Level("a".into())));
    }

    #[test]
    fn effect_param_type_mismatch_is_error() {
        let m = Mechanism::new("x")
            .with_param(Parameter::new("p", ParamRange::Levels(vec!["l1".into()])))
            .with_loss_window_effect(EffectValue::Param("p".into()));
        let mut s = BTreeMap::new();
        s.insert(
            (MechanismName::new("x"), ParamName::new("p")),
            ParamValue::Level("l1".into()),
        );
        assert!(matches!(
            m.resolve_loss_window(&s),
            Err(ModelError::ValueOutOfRange { .. })
        ));
    }
}
