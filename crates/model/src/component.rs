//! Component types and failure modes (paper §3.1.1).

use aved_units::{Duration, Money};
use serde::{Deserialize, Serialize};

use crate::{ComponentName, MechanismName};

/// A duration-valued attribute that is either a literal value or resolved
/// at design time by an availability mechanism.
///
/// The paper's infrastructure specification writes
/// `mttr=<maintenanceA>` to delegate a component's repair time to the
/// selected maintenance-contract level, and `loss_window=<checkpoint>` to
/// delegate an application's loss window to the checkpoint mechanism's
/// interval parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DurationSpec {
    /// A literal duration, fixed in the infrastructure model.
    Fixed(Duration),
    /// Resolved by the named mechanism's matching effect, given the
    /// mechanism parameter settings chosen in a design.
    FromMechanism(MechanismName),
}

impl DurationSpec {
    /// The fixed value, if this spec is a literal.
    #[must_use]
    pub fn as_fixed(&self) -> Option<Duration> {
        match self {
            DurationSpec::Fixed(d) => Some(*d),
            DurationSpec::FromMechanism(_) => None,
        }
    }

    /// The referenced mechanism, if any.
    #[must_use]
    pub fn mechanism(&self) -> Option<&MechanismName> {
        match self {
            DurationSpec::Fixed(_) => None,
            DurationSpec::FromMechanism(m) => Some(m),
        }
    }
}

impl From<Duration> for DurationSpec {
    fn from(d: Duration) -> DurationSpec {
        DurationSpec::Fixed(d)
    }
}

/// One way a component can fail (paper: "each component can have multiple
/// failure modes").
///
/// A failure mode is described by its MTBF, the time to *detect* a failure
/// of this mode, and the MTTR for the component itself once detected
/// (excluding restarts of dependent components, which are derived from the
/// resource's dependency graph).
///
/// Both the MTBF and the repair time can be delegated to an availability
/// mechanism: `mttr=<maintenanceA>` resolves repair time through the
/// selected contract level (paper Fig. 3), and `mtbf=<rejuvenation>`
/// models mechanisms that modify failure rates — the paper's §3.1.2 names
/// MTBF among the attributes mechanisms may set, and its introduction
/// lists software rejuvenation as a design dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureMode {
    name: String,
    mtbf: DurationSpec,
    repair: DurationSpec,
    detect_time: Duration,
}

impl FailureMode {
    /// Creates a failure mode.
    ///
    /// # Panics
    ///
    /// Panics if a literal `mtbf` is zero (a component that fails
    /// continuously is not a meaningful model) or `name` is empty.
    pub fn new<S, M, R>(name: S, mtbf: M, repair: R, detect_time: Duration) -> FailureMode
    where
        S: Into<String>,
        M: Into<DurationSpec>,
        R: Into<DurationSpec>,
    {
        let name = name.into();
        let mtbf = mtbf.into();
        assert!(!name.is_empty(), "failure mode name must not be empty");
        if let DurationSpec::Fixed(d) = &mtbf {
            assert!(!d.is_zero(), "failure mode MTBF must be positive");
        }
        FailureMode {
            name,
            mtbf,
            repair: repair.into(),
            detect_time,
        }
    }

    /// The mode's name (`hard`, `soft`, ...).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mean time between failures of this mode, when fixed in the
    /// infrastructure model; `None` when delegated to a mechanism (resolve
    /// through [`mtbf_spec`](Self::mtbf_spec) and the design's settings).
    #[must_use]
    pub fn mtbf(&self) -> Option<Duration> {
        self.mtbf.as_fixed()
    }

    /// The MTBF specification (literal or mechanism-resolved).
    #[must_use]
    pub fn mtbf_spec(&self) -> &DurationSpec {
        &self.mtbf
    }

    /// The component repair time specification (literal or
    /// mechanism-resolved).
    #[must_use]
    pub fn repair(&self) -> &DurationSpec {
        &self.repair
    }

    /// Time to detect a failure of this mode.
    #[must_use]
    pub fn detect_time(&self) -> Duration {
        self.detect_time
    }
}

/// A component type: the basic unit of fault management (paper §3.1.1).
///
/// Components correspond to hardware elements (a compute node) or software
/// elements (an OS, an application server). A component carries annualized
/// costs for each operational mode — *inactive* (powered off / unlicensed)
/// and *active* — its failure modes, optionally a bound on how many
/// instances a design may use, and, for application software of finite
/// jobs, a loss window.
///
/// # Examples
///
/// ```
/// use aved_model::{ComponentType, FailureMode, DurationSpec};
/// use aved_units::{Duration, Money};
///
/// let machine = ComponentType::new("machineA")
///     .with_costs(Money::from_dollars(2400.0), Money::from_dollars(2640.0))
///     .with_failure_mode(FailureMode::new(
///         "hard",
///         Duration::from_days(650.0),
///         DurationSpec::FromMechanism("maintenanceA".into()),
///         Duration::from_mins(2.0),
///     ))
///     .with_failure_mode(FailureMode::new(
///         "soft",
///         Duration::from_days(75.0),
///         Duration::ZERO,
///         Duration::ZERO,
///     ));
/// assert_eq!(machine.failure_modes().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentType {
    name: ComponentName,
    cost_inactive: Money,
    cost_active: Money,
    max_instances: Option<usize>,
    failure_modes: Vec<FailureMode>,
    loss_window: Option<DurationSpec>,
}

impl ComponentType {
    /// Creates a component type with zero cost and no failure modes;
    /// configure with the `with_*` methods.
    pub fn new<N: Into<ComponentName>>(name: N) -> ComponentType {
        ComponentType {
            name: name.into(),
            cost_inactive: Money::ZERO,
            cost_active: Money::ZERO,
            max_instances: None,
            failure_modes: Vec::new(),
            loss_window: None,
        }
    }

    /// Sets the same annual cost for both operational modes
    /// (the spec's `cost=X` shorthand).
    #[must_use]
    pub fn with_cost(mut self, cost: Money) -> ComponentType {
        self.cost_inactive = cost;
        self.cost_active = cost;
        self
    }

    /// Sets per-mode annual costs (the spec's
    /// `cost([inactive,active])=[a b]` form).
    #[must_use]
    pub fn with_costs(mut self, inactive: Money, active: Money) -> ComponentType {
        self.cost_inactive = inactive;
        self.cost_active = active;
        self
    }

    /// Bounds the number of instances of this component a design may use.
    #[must_use]
    pub fn with_max_instances(mut self, max: usize) -> ComponentType {
        self.max_instances = Some(max);
        self
    }

    /// Adds a failure mode.
    #[must_use]
    pub fn with_failure_mode(mut self, mode: FailureMode) -> ComponentType {
        self.failure_modes.push(mode);
        self
    }

    /// Declares the loss window of this (application software) component.
    #[must_use]
    pub fn with_loss_window<S: Into<DurationSpec>>(mut self, spec: S) -> ComponentType {
        self.loss_window = Some(spec.into());
        self
    }

    /// The component's name.
    #[must_use]
    pub fn name(&self) -> &ComponentName {
        &self.name
    }

    /// Annual cost in the given operational mode.
    #[must_use]
    pub fn cost(&self, mode: crate::OperationalMode) -> Money {
        match mode {
            crate::OperationalMode::Inactive => self.cost_inactive,
            crate::OperationalMode::Active => self.cost_active,
        }
    }

    /// Annual cost when inactive (powered off / unlicensed).
    #[must_use]
    pub fn cost_inactive(&self) -> Money {
        self.cost_inactive
    }

    /// Annual cost when active.
    #[must_use]
    pub fn cost_active(&self) -> Money {
        self.cost_active
    }

    /// The allowed maximum instance count, if bounded.
    #[must_use]
    pub fn max_instances(&self) -> Option<usize> {
        self.max_instances
    }

    /// The component's failure modes.
    #[must_use]
    pub fn failure_modes(&self) -> &[FailureMode] {
        &self.failure_modes
    }

    /// The loss window specification, for application software components.
    #[must_use]
    pub fn loss_window(&self) -> Option<&DurationSpec> {
        self.loss_window.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OperationalMode;

    #[test]
    fn builder_sets_fields() {
        let c = ComponentType::new("database")
            .with_costs(Money::ZERO, Money::from_dollars(20_000.0))
            .with_max_instances(4)
            .with_failure_mode(FailureMode::new(
                "soft",
                Duration::from_days(60.0),
                Duration::ZERO,
                Duration::ZERO,
            ));
        assert_eq!(c.name().as_str(), "database");
        assert_eq!(c.cost(OperationalMode::Inactive), Money::ZERO);
        assert_eq!(
            c.cost(OperationalMode::Active),
            Money::from_dollars(20_000.0)
        );
        assert_eq!(c.max_instances(), Some(4));
        assert_eq!(c.failure_modes().len(), 1);
        assert_eq!(c.failure_modes()[0].name(), "soft");
        assert!(c.loss_window().is_none());
    }

    #[test]
    fn shorthand_cost_applies_to_both_modes() {
        let c = ComponentType::new("webserver").with_cost(Money::from_dollars(5.0));
        assert_eq!(c.cost_inactive(), Money::from_dollars(5.0));
        assert_eq!(c.cost_active(), Money::from_dollars(5.0));
    }

    #[test]
    fn loss_window_reference() {
        let c = ComponentType::new("mpi")
            .with_loss_window(DurationSpec::FromMechanism("checkpoint".into()));
        assert_eq!(
            c.loss_window()
                .and_then(DurationSpec::mechanism)
                .map(AsRef::as_ref),
            Some("checkpoint")
        );
    }

    #[test]
    fn duration_spec_accessors() {
        let fixed = DurationSpec::Fixed(Duration::from_hours(1.0));
        assert_eq!(fixed.as_fixed(), Some(Duration::from_hours(1.0)));
        assert!(fixed.mechanism().is_none());
        let from = DurationSpec::FromMechanism("maintenanceA".into());
        assert!(from.as_fixed().is_none());
        assert_eq!(from.mechanism().map(AsRef::as_ref), Some("maintenanceA"));
    }

    #[test]
    #[should_panic(expected = "MTBF")]
    fn zero_mtbf_panics() {
        let _ = FailureMode::new("bad", Duration::ZERO, Duration::ZERO, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "name")]
    fn empty_mode_name_panics() {
        let _ = FailureMode::new("", Duration::from_days(1.0), Duration::ZERO, Duration::ZERO);
    }
}
