//! High-level service requirements (paper §2).

use aved_units::Duration;
use serde::{Deserialize, Serialize};

/// What the user asks of the design engine.
///
/// Enterprise services that serve requests indefinitely specify a minimum
/// throughput (in service-specific units of load) and a maximum annual
/// downtime. Finite jobs specify only a maximum expected completion time —
/// availability metrics influence completion time but are not themselves
/// requirements.
///
/// # Examples
///
/// ```
/// use aved_model::ServiceRequirement;
/// use aved_units::Duration;
///
/// let req = ServiceRequirement::enterprise(1000.0, Duration::from_mins(100.0));
/// assert!(req.min_throughput().is_some());
///
/// let job = ServiceRequirement::job(Duration::from_hours(20.0));
/// assert!(job.max_execution_time().is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ServiceRequirement {
    /// Throughput + annual-downtime thresholds for an always-on service.
    Enterprise {
        /// Minimum sustained throughput, in the service's units of load.
        min_throughput: f64,
        /// Maximum tolerated expected downtime per year.
        max_annual_downtime: Duration,
    },
    /// Completion-time threshold for a finite job.
    Job {
        /// Maximum tolerated expected job execution time.
        max_execution_time: Duration,
    },
}

impl ServiceRequirement {
    /// Creates an enterprise requirement.
    ///
    /// # Panics
    ///
    /// Panics if `min_throughput` is not positive.
    #[must_use]
    pub fn enterprise(min_throughput: f64, max_annual_downtime: Duration) -> ServiceRequirement {
        assert!(
            min_throughput > 0.0,
            "throughput requirement must be positive"
        );
        ServiceRequirement::Enterprise {
            min_throughput,
            max_annual_downtime,
        }
    }

    /// Creates a job requirement.
    ///
    /// # Panics
    ///
    /// Panics if `max_execution_time` is zero.
    #[must_use]
    pub fn job(max_execution_time: Duration) -> ServiceRequirement {
        assert!(
            !max_execution_time.is_zero(),
            "execution time requirement must be positive"
        );
        ServiceRequirement::Job { max_execution_time }
    }

    /// The throughput requirement, for enterprise services.
    #[must_use]
    pub fn min_throughput(&self) -> Option<f64> {
        match self {
            ServiceRequirement::Enterprise { min_throughput, .. } => Some(*min_throughput),
            ServiceRequirement::Job { .. } => None,
        }
    }

    /// The downtime requirement, for enterprise services.
    #[must_use]
    pub fn max_annual_downtime(&self) -> Option<Duration> {
        match self {
            ServiceRequirement::Enterprise {
                max_annual_downtime,
                ..
            } => Some(*max_annual_downtime),
            ServiceRequirement::Job { .. } => None,
        }
    }

    /// The completion-time requirement, for jobs.
    #[must_use]
    pub fn max_execution_time(&self) -> Option<Duration> {
        match self {
            ServiceRequirement::Enterprise { .. } => None,
            ServiceRequirement::Job { max_execution_time } => Some(*max_execution_time),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enterprise_accessors() {
        let r = ServiceRequirement::enterprise(400.0, Duration::from_mins(10.0));
        assert_eq!(r.min_throughput(), Some(400.0));
        assert_eq!(r.max_annual_downtime(), Some(Duration::from_mins(10.0)));
        assert_eq!(r.max_execution_time(), None);
    }

    #[test]
    fn job_accessors() {
        let r = ServiceRequirement::job(Duration::from_hours(100.0));
        assert_eq!(r.min_throughput(), None);
        assert_eq!(r.max_annual_downtime(), None);
        assert_eq!(r.max_execution_time(), Some(Duration::from_hours(100.0)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_throughput_panics() {
        let _ = ServiceRequirement::enterprise(0.0, Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_execution_time_panics() {
        let _ = ServiceRequirement::job(Duration::ZERO);
    }
}
