//! The design cost model (paper §3.1.1 and §4.2).
//!
//! "The cost of a design is simply calculated as the sum of the cost of all
//! components at their selected operational mode (active or inactive) and
//! the cost of the availability mechanisms for the selected values of their
//! parameters."
//!
//! Mechanism costs whose specification is a per-level table (maintenance
//! contracts) are charged **per covered component instance** — the paper
//! explains family crossovers in Fig. 6 by "the cost of a maintenance
//! contract is proportional to the number of machines it covers". Flat
//! mechanism costs are charged once per tier.

use aved_units::Money;
use serde::{Deserialize, Serialize};

use crate::{Design, Infrastructure, MechanismCost, ModelError, OperationalMode, TierDesign};

/// An itemized design cost.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Annual cost of active-resource components.
    pub active_components: Money,
    /// Annual cost of spare-resource components (at their configured
    /// operational modes).
    pub spare_components: Money,
    /// Annual cost of availability mechanisms.
    pub mechanisms: Money,
}

impl CostBreakdown {
    /// The total annual cost.
    #[must_use]
    pub fn total(&self) -> Money {
        self.active_components + self.spare_components + self.mechanisms
    }

    /// Sums two breakdowns (e.g. across tiers).
    #[must_use]
    pub fn combine(&self, other: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            active_components: self.active_components + other.active_components,
            spare_components: self.spare_components + other.spare_components,
            mechanisms: self.mechanisms + other.mechanisms,
        }
    }
}

/// Computes the itemized annual cost of one tier design.
///
/// # Errors
///
/// Returns [`ModelError`] if the design references unknown resource types,
/// components or mechanisms, or if mechanism settings are missing or out of
/// range.
pub fn tier_design_cost(
    infrastructure: &Infrastructure,
    td: &TierDesign,
) -> Result<CostBreakdown, ModelError> {
    let resource = infrastructure
        .resource(td.resource().as_str())
        .ok_or_else(|| ModelError::UnknownResource {
            tier: td.tier().to_string(),
            resource: td.resource().to_string(),
        })?;
    let spare_modes = td.spare_mode().modes(resource.components().len());

    let mut breakdown = CostBreakdown::default();
    for (slot_idx, slot) in resource.components().iter().enumerate() {
        let component = infrastructure
            .component(slot.component().as_str())
            .ok_or_else(|| ModelError::UnknownComponent {
                resource: resource.name().to_string(),
                component: slot.component().to_string(),
            })?;
        breakdown.active_components +=
            component.cost(OperationalMode::Active) * f64::from(td.n_active());
        breakdown.spare_components +=
            component.cost(spare_modes[slot_idx]) * f64::from(td.n_spare());

        // Mechanisms applied to this component (maintenance contracts,
        // checkpointing): per-level tables are per covered instance.
        for mech_name in infrastructure.mechanisms_of_component(component) {
            let mech = infrastructure
                .mechanism(mech_name.as_str())
                .ok_or_else(|| ModelError::UnknownMechanism {
                    context: format!("component {}", component.name()),
                    mechanism: mech_name.to_string(),
                })?;
            let per_use = mech.resolve_cost(td)?;
            let multiplier = match mech.cost_spec() {
                MechanismCost::Table { .. } => f64::from(td.n_total()),
                MechanismCost::Fixed(_) => 1.0,
            };
            breakdown.mechanisms += per_use * multiplier;
        }
    }
    Ok(breakdown)
}

/// Computes the itemized annual cost of a complete design (sum over tiers).
///
/// # Errors
///
/// See [`tier_design_cost`].
pub fn design_cost(
    infrastructure: &Infrastructure,
    design: &Design,
) -> Result<CostBreakdown, ModelError> {
    let mut total = CostBreakdown::default();
    for td in design.tiers() {
        total = total.combine(&tier_design_cost(infrastructure, td)?);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        ComponentType, DurationSpec, EffectValue, FailureMode, Mechanism, ParamRange, ParamValue,
        Parameter, ResourceComponent, ResourceType, SpareMode,
    };
    use aved_units::Duration;

    /// Paper-flavoured fixture: machineA + linux + appserverA as resource
    /// rC, maintenanceA contract.
    fn infra() -> Infrastructure {
        Infrastructure::new()
            .with_component(
                ComponentType::new("machineA")
                    .with_costs(Money::from_dollars(2400.0), Money::from_dollars(2640.0))
                    .with_failure_mode(FailureMode::new(
                        "hard",
                        Duration::from_days(650.0),
                        DurationSpec::FromMechanism("maintenanceA".into()),
                        Duration::from_mins(2.0),
                    )),
            )
            .with_component(ComponentType::new("linux").with_cost(Money::ZERO))
            .with_component(
                ComponentType::new("appserverA")
                    .with_costs(Money::ZERO, Money::from_dollars(1700.0)),
            )
            .with_mechanism(
                Mechanism::new("maintenanceA")
                    .with_param(Parameter::new(
                        "level",
                        ParamRange::Levels(vec!["bronze".into(), "gold".into()]),
                    ))
                    .with_cost_table(
                        "level",
                        vec![Money::from_dollars(380.0), Money::from_dollars(760.0)],
                    )
                    .with_mttr_effect(EffectValue::Table {
                        param: "level".into(),
                        values: vec![Duration::from_hours(38.0), Duration::from_hours(8.0)],
                    }),
            )
            .with_resource(
                ResourceType::new("rC", Duration::ZERO)
                    .with_component(ResourceComponent::new(
                        "machineA",
                        None,
                        Duration::from_secs(30.0),
                    ))
                    .with_component(ResourceComponent::new(
                        "linux",
                        Some("machineA".into()),
                        Duration::from_mins(2.0),
                    ))
                    .with_component(ResourceComponent::new(
                        "appserverA",
                        Some("linux".into()),
                        Duration::from_mins(2.0),
                    )),
            )
    }

    #[test]
    fn active_only_design_cost() {
        let td = TierDesign::new("application", "rC", 3, 0).with_setting(
            "maintenanceA",
            "level",
            ParamValue::Level("bronze".into()),
        );
        let b = tier_design_cost(&infra(), &td).unwrap();
        // 3 * (2640 machineA + 0 linux + 1700 appserver) = 13020
        assert_eq!(b.active_components, Money::from_dollars(3.0 * 4340.0));
        assert_eq!(b.spare_components, Money::ZERO);
        // bronze contract per machine, 3 machines
        assert_eq!(b.mechanisms, Money::from_dollars(3.0 * 380.0));
        assert_eq!(b.total(), Money::from_dollars(13_020.0 + 1140.0));
    }

    #[test]
    fn inactive_spare_is_cheaper_than_active() {
        let inactive = TierDesign::new("application", "rC", 2, 1)
            .with_spare_mode(SpareMode::AllInactive)
            .with_setting("maintenanceA", "level", ParamValue::Level("bronze".into()));
        let active = TierDesign::new("application", "rC", 2, 1)
            .with_spare_mode(SpareMode::AllActive)
            .with_setting("maintenanceA", "level", ParamValue::Level("bronze".into()));
        let ci = tier_design_cost(&infra(), &inactive).unwrap();
        let ca = tier_design_cost(&infra(), &active).unwrap();
        // Inactive spare: 2400 machineA + 0 + 0 = 2400
        assert_eq!(ci.spare_components, Money::from_dollars(2400.0));
        // Active spare: 2640 + 0 + 1700 = 4340
        assert_eq!(ca.spare_components, Money::from_dollars(4340.0));
        assert!(ci.total() < ca.total());
    }

    #[test]
    fn contract_cost_scales_with_covered_machines() {
        let mk = |n_active: u32, n_spare: u32, level: &str| {
            TierDesign::new("application", "rC", n_active, n_spare).with_setting(
                "maintenanceA",
                "level",
                ParamValue::Level(level.into()),
            )
        };
        let small = tier_design_cost(&infra(), &mk(2, 0, "gold")).unwrap();
        let big = tier_design_cost(&infra(), &mk(10, 2, "gold")).unwrap();
        assert_eq!(small.mechanisms, Money::from_dollars(2.0 * 760.0));
        assert_eq!(big.mechanisms, Money::from_dollars(12.0 * 760.0));
    }

    #[test]
    fn per_component_spare_modes_price_mixed() {
        use crate::OperationalMode::{Active, Inactive};
        let td = TierDesign::new("application", "rC", 1, 1)
            .with_spare_mode(SpareMode::PerComponent(vec![Active, Active, Inactive]))
            .with_setting("maintenanceA", "level", ParamValue::Level("bronze".into()));
        let b = tier_design_cost(&infra(), &td).unwrap();
        // Spare: machineA active 2640 + linux 0 + appserver inactive 0.
        assert_eq!(b.spare_components, Money::from_dollars(2640.0));
    }

    #[test]
    fn missing_setting_is_error() {
        let td = TierDesign::new("application", "rC", 1, 0);
        assert!(matches!(
            tier_design_cost(&infra(), &td),
            Err(ModelError::MissingSetting { .. })
        ));
    }

    #[test]
    fn unknown_resource_is_error() {
        let td = TierDesign::new("application", "rZ", 1, 0);
        assert!(matches!(
            tier_design_cost(&infra(), &td),
            Err(ModelError::UnknownResource { .. })
        ));
    }

    #[test]
    fn design_cost_sums_tiers() {
        let d = Design::new(vec![
            TierDesign::new("application", "rC", 1, 0).with_setting(
                "maintenanceA",
                "level",
                ParamValue::Level("bronze".into()),
            ),
            TierDesign::new("application2", "rC", 2, 0).with_setting(
                "maintenanceA",
                "level",
                ParamValue::Level("bronze".into()),
            ),
        ]);
        let total = design_cost(&infra(), &d).unwrap();
        assert_eq!(
            total.total(),
            Money::from_dollars(3.0 * 4340.0 + 3.0 * 380.0)
        );
    }

    #[test]
    fn breakdown_combine_adds_fields() {
        let a = CostBreakdown {
            active_components: Money::from_dollars(1.0),
            spare_components: Money::from_dollars(2.0),
            mechanisms: Money::from_dollars(3.0),
        };
        let b = a.combine(&a);
        assert_eq!(b.total(), Money::from_dollars(12.0));
    }
}
