//! Validation errors for the design-space model.

use std::error::Error;
use std::fmt;

/// Error produced while validating an infrastructure or service model, or
/// while resolving a design against them.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A resource refers to a component type that is not defined.
    UnknownComponent {
        /// The resource doing the referencing.
        resource: String,
        /// The missing component name.
        component: String,
    },
    /// A component's `mttr` or `loss_window` references an undefined
    /// mechanism.
    UnknownMechanism {
        /// Where the reference occurred.
        context: String,
        /// The missing mechanism name.
        mechanism: String,
    },
    /// A service tier option refers to an undefined resource type.
    UnknownResource {
        /// The tier doing the referencing.
        tier: String,
        /// The missing resource type name.
        resource: String,
    },
    /// A `depend=` clause references a component not present in the same
    /// resource.
    UnknownDependency {
        /// The resource being validated.
        resource: String,
        /// The component whose dependency is dangling.
        component: String,
        /// The missing dependency name.
        dependency: String,
    },
    /// Component dependencies within a resource form a cycle.
    DependencyCycle {
        /// The resource with the cyclic dependencies.
        resource: String,
    },
    /// A mechanism effect table has a different length than its parameter's
    /// range.
    EffectTableMismatch {
        /// The mechanism being validated.
        mechanism: String,
        /// The parameter driving the table.
        param: String,
        /// Entries in the range.
        range_len: usize,
        /// Entries in the table.
        table_len: usize,
    },
    /// A mechanism effect references an unknown parameter.
    UnknownParameter {
        /// The mechanism being validated.
        mechanism: String,
        /// The missing parameter name.
        param: String,
    },
    /// A design supplied a parameter value outside its declared range.
    ValueOutOfRange {
        /// The mechanism whose parameter is being set.
        mechanism: String,
        /// The parameter.
        param: String,
        /// A display of the offending value.
        value: String,
    },
    /// A design is missing a setting for a required mechanism parameter.
    MissingSetting {
        /// The mechanism whose parameter is unset.
        mechanism: String,
        /// The unset parameter.
        param: String,
    },
    /// A design requests more instances of a component than the
    /// infrastructure allows (`max_instances`).
    TooManyInstances {
        /// The constrained component.
        component: String,
        /// The number requested.
        requested: usize,
        /// The allowed maximum.
        allowed: usize,
    },
    /// A design's tier count or names do not match the service model.
    TierMismatch {
        /// Explanation of the mismatch.
        detail: String,
    },
    /// A quantity failed a sanity check (e.g. zero active resources).
    Invalid {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownComponent {
                resource,
                component,
            } => write!(f, "resource {resource} references unknown component {component}"),
            ModelError::UnknownMechanism { context, mechanism } => {
                write!(f, "{context} references unknown mechanism {mechanism}")
            }
            ModelError::UnknownResource { tier, resource } => {
                write!(f, "tier {tier} references unknown resource type {resource}")
            }
            ModelError::UnknownDependency {
                resource,
                component,
                dependency,
            } => write!(
                f,
                "component {component} in resource {resource} depends on unknown component {dependency}"
            ),
            ModelError::DependencyCycle { resource } => {
                write!(f, "component dependencies in resource {resource} form a cycle")
            }
            ModelError::EffectTableMismatch {
                mechanism,
                param,
                range_len,
                table_len,
            } => write!(
                f,
                "mechanism {mechanism}: effect table over parameter {param} has {table_len} entries but the range has {range_len}"
            ),
            ModelError::UnknownParameter { mechanism, param } => {
                write!(f, "mechanism {mechanism} references unknown parameter {param}")
            }
            ModelError::ValueOutOfRange {
                mechanism,
                param,
                value,
            } => write!(
                f,
                "value {value} is outside the range of parameter {param} of mechanism {mechanism}"
            ),
            ModelError::MissingSetting { mechanism, param } => {
                write!(f, "design does not set parameter {param} of mechanism {mechanism}")
            }
            ModelError::TooManyInstances {
                component,
                requested,
                allowed,
            } => write!(
                f,
                "design uses {requested} instances of component {component}, more than the allowed {allowed}"
            ),
            ModelError::TierMismatch { detail } => write!(f, "tier mismatch: {detail}"),
            ModelError::Invalid { detail } => write!(f, "invalid model: {detail}"),
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_participants() {
        let err = ModelError::UnknownComponent {
            resource: "rA".into(),
            component: "machineZ".into(),
        };
        let msg = err.to_string();
        assert!(msg.contains("rA") && msg.contains("machineZ"));

        let err = ModelError::EffectTableMismatch {
            mechanism: "maintenanceA".into(),
            param: "level".into(),
            range_len: 4,
            table_len: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains('4') && msg.contains('3'));
    }
}
