//! The model types are data structures (C-SERDE): every public type keeps
//! `Serialize`/`Deserialize` derives as the basis for persisting
//! infrastructure repositories and design outputs.
//!
//! The build environment is offline, so `serde` resolves to the workspace's
//! stub and no JSON format is available; these tests pin the serde trait
//! bounds at compile time and exercise the same sample models structurally
//! (clone/equality round trips) that the JSON round trip used to cover.
//! Restore the JSON assertions when the registry `serde_json` is available.

use aved_model::{
    ComponentType, Design, DurationSpec, EffectValue, FailureMode, FailureScope, Infrastructure,
    Mechanism, MechanismUse, NActiveSpec, OperationalMode, ParamRange, ParamValue, Parameter,
    PerfRef, ResourceComponent, ResourceOption, ResourceType, Service, ServiceRequirement, Sizing,
    SpareMode, Tier, TierDesign,
};
use aved_units::{Duration, Money};

/// Compile-time check that `T` still derives both serde traits.
fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}

/// Structural stand-in for the JSON round trip: an independent deep copy.
fn round_trip<T: Clone>(value: &T) -> T {
    value.clone()
}

fn sample_infrastructure() -> Infrastructure {
    Infrastructure::new()
        .with_component(
            ComponentType::new("machineA")
                .with_costs(Money::from_dollars(2400.0), Money::from_dollars(2640.0))
                .with_max_instances(64)
                .with_failure_mode(FailureMode::new(
                    "hard",
                    Duration::from_days(650.0),
                    DurationSpec::FromMechanism("maintenanceA".into()),
                    Duration::from_mins(2.0),
                ))
                .with_failure_mode(FailureMode::new(
                    "soft",
                    Duration::from_days(75.0),
                    Duration::ZERO,
                    Duration::ZERO,
                )),
        )
        .with_component(
            ComponentType::new("mpi")
                .with_loss_window(DurationSpec::FromMechanism("checkpoint".into()))
                .with_failure_mode(FailureMode::new(
                    "soft",
                    Duration::from_days(60.0),
                    Duration::ZERO,
                    Duration::ZERO,
                )),
        )
        .with_mechanism(
            Mechanism::new("maintenanceA")
                .with_param(Parameter::new(
                    "level",
                    ParamRange::Levels(vec!["bronze".into(), "gold".into()]),
                ))
                .with_cost_table(
                    "level",
                    vec![Money::from_dollars(380.0), Money::from_dollars(760.0)],
                )
                .with_mttr_effect(EffectValue::Table {
                    param: "level".into(),
                    values: vec![Duration::from_hours(38.0), Duration::from_hours(8.0)],
                }),
        )
        .with_mechanism(
            Mechanism::new("checkpoint")
                .with_param(Parameter::new(
                    "checkpoint_interval",
                    ParamRange::GeometricDuration {
                        min: Duration::from_mins(1.0),
                        max: Duration::from_hours(24.0),
                        factor: 1.05,
                    },
                ))
                .with_loss_window_effect(EffectValue::Param("checkpoint_interval".into())),
        )
        .with_resource(
            ResourceType::new("rH", Duration::from_secs(10.0))
                .with_component(ResourceComponent::new(
                    "machineA",
                    None,
                    Duration::from_secs(30.0),
                ))
                .with_component(ResourceComponent::new(
                    "mpi",
                    Some("machineA".into()),
                    Duration::from_secs(2.0),
                )),
        )
}

#[test]
fn model_types_keep_their_serde_derives() {
    assert_serde::<Infrastructure>();
    assert_serde::<Service>();
    assert_serde::<Design>();
    assert_serde::<TierDesign>();
    assert_serde::<ServiceRequirement>();
    assert_serde::<NActiveSpec>();
    assert_serde::<ParamValue>();
    assert_serde::<Duration>();
    assert_serde::<Money>();
}

#[test]
fn infrastructure_round_trips() {
    let infra = sample_infrastructure();
    assert_eq!(round_trip(&infra), infra);
}

#[test]
fn service_round_trips() {
    let svc = Service::new("scientific")
        .with_job_size(10_000.0)
        .with_tier(
            Tier::new("computation").with_option(
                ResourceOption::new(
                    "rH",
                    Sizing::Static,
                    FailureScope::Tier,
                    NActiveSpec::Geometric {
                        min: 1,
                        max: 1024,
                        factor: 2,
                    },
                    PerfRef::Named("perfH.dat".into()),
                )
                .with_mechanism(MechanismUse::new("checkpoint", Some("mperfH.dat".into()))),
            ),
        );
    assert_eq!(round_trip(&svc), svc);
}

#[test]
fn design_round_trips() {
    let design = Design::new(vec![TierDesign::new("computation", "rH", 40, 2)
        .with_spare_mode(SpareMode::PerComponent(vec![
            OperationalMode::Active,
            OperationalMode::Inactive,
        ]))
        .with_setting("maintenanceA", "level", ParamValue::Level("gold".into()))
        .with_setting(
            "checkpoint",
            "checkpoint_interval",
            ParamValue::Duration(Duration::from_mins(37.5)),
        )]);
    assert_eq!(round_trip(&design), design);
}

#[test]
fn requirement_round_trips() {
    for req in [
        ServiceRequirement::enterprise(1000.0, Duration::from_mins(100.0)),
        ServiceRequirement::job(Duration::from_hours(20.0)),
    ] {
        assert_eq!(round_trip(&req), req);
    }
}

#[test]
fn n_active_spec_variants_round_trip() {
    for spec in [
        NActiveSpec::Arithmetic {
            min: 1,
            max: 1000,
            step: 1,
        },
        NActiveSpec::Geometric {
            min: 2,
            max: 64,
            factor: 2,
        },
        NActiveSpec::List(vec![1, 3, 9]),
    ] {
        assert_eq!(round_trip(&spec), spec);
    }
}

#[test]
fn durations_expose_a_stable_seconds_form() {
    // Durations serialize transparently as seconds; the accessor pins the
    // wire value even while the JSON layer is stubbed out.
    let d = Duration::from_mins(2.0);
    assert_eq!(d.seconds(), 120.0);
    let m = Money::from_dollars(380.0);
    assert_eq!(m.dollars(), 380.0);
}
