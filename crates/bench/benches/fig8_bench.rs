//! Benchmark: one Fig.-8 curve — the cost-of-availability sweep for a
//! single load (frontier construction + budget lookups across the full
//! downtime axis).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aved::avail::DecompositionEngine;
use aved::scenario;
use aved::search::{tier_pareto_frontier, CachingEngine, EvalContext, SearchOptions};
use aved_bench::geometric_grid;

fn bench_fig8(c: &mut Criterion) {
    let infrastructure = scenario::infrastructure().unwrap();
    let service = scenario::ecommerce().unwrap();
    let catalog = scenario::catalog();
    let options = SearchOptions::default();
    let budgets = geometric_grid(0.1, 1000.0, 25);

    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);

    for load in [400.0, 1600.0] {
        group.bench_function(format!("curve_load{load}"), |b| {
            b.iter(|| {
                let inner = DecompositionEngine::default();
                let engine = CachingEngine::new(&inner);
                let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
                let frontier =
                    tier_pareto_frontier(&ctx, "application", black_box(load), &options).unwrap();
                let base = frontier[0].cost();
                let mut acc = 0.0;
                for &budget in &budgets {
                    if let Some(e) = frontier
                        .iter()
                        .find(|e| e.annual_downtime().minutes() <= budget)
                    {
                        acc += (e.cost() - base).dollars();
                    }
                }
                black_box(acc);
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
