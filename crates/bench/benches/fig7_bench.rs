//! Benchmark: one Fig.-7 data point — the optimal scientific-application
//! design at one execution-time requirement, including the checkpoint
//! parameter sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aved::avail::DecompositionEngine;
use aved::model::ParamValue;
use aved::scenario;
use aved::search::{search_job_tier, CachingEngine, EvalContext, SearchOptions};
use aved::units::Duration;

fn bench_fig7(c: &mut Criterion) {
    let infrastructure = scenario::infrastructure().unwrap();
    let service = scenario::scientific().unwrap();
    let catalog = scenario::catalog();
    let options = SearchOptions {
        max_spares: 3,
        ..SearchOptions::default()
    }
    .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
    .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()));

    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);

    for req_hours in [50.0, 200.0] {
        group.bench_function(format!("point_req{req_hours}h"), |b| {
            b.iter(|| {
                let inner = DecompositionEngine::default();
                let engine = CachingEngine::new(&inner);
                let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
                let out = search_job_tier(
                    &ctx,
                    "computation",
                    Duration::from_hours(black_box(req_hours)),
                    &options,
                )
                .unwrap();
                black_box(out.best().map(|e| e.cost()));
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
