//! Benchmark: the Fig.-7 frontier sweep, serial vs parallel candidate
//! evaluation (`SearchOptions::with_jobs`).
//!
//! Besides the criterion timings, the bench records one set of
//! wall-clock measurements (median of a few runs per worker count) to
//! `BENCH_search.json` at the repository root so the perf trajectory is
//! tracked across commits. Speedups are relative to jobs=1 on the same
//! machine; `available_parallelism` is recorded alongside because a
//! worker count above the CPU count cannot help (on a single-CPU
//! container every configuration degenerates to ~1x).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration as StdDuration, Instant};

use aved::avail::DecompositionEngine;
use aved::model::ParamValue;
use aved::scenario;
use aved::search::{job_frontier, CachingEngine, EvalContext, SearchOptions};

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 8];
const TOTALS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

fn options() -> SearchOptions {
    SearchOptions {
        max_extra_active: 2,
        max_spares: 2,
        ..SearchOptions::default()
    }
    .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
    .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()))
}

/// One full Fig.-7 sweep with a fresh model cache (so every run pays the
/// same evaluation work and the cache speedup is not measured instead).
fn run_sweep(jobs: usize) -> usize {
    let infrastructure = scenario::infrastructure().unwrap();
    let service = scenario::scientific().unwrap();
    let catalog = scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let frontier = job_frontier(&ctx, "computation", &TOTALS, &options().with_jobs(jobs)).unwrap();
    frontier.len()
}

fn median_wall_time(jobs: usize, samples: usize) -> StdDuration {
    let mut times: Vec<StdDuration> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            black_box(run_sweep(jobs));
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn write_bench_json() {
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let measured: Vec<(usize, StdDuration)> = JOB_COUNTS
        .iter()
        .map(|&jobs| (jobs, median_wall_time(jobs, 3)))
        .collect();
    let serial = measured[0].1.as_secs_f64();

    let mut rows = String::new();
    for (i, (jobs, time)) in measured.iter().enumerate() {
        let secs = time.as_secs_f64();
        if i > 0 {
            rows.push_str(",\n");
        }
        rows.push_str(&format!(
            "    {{ \"jobs\": {jobs}, \"median_wall_ms\": {:.3}, \"speedup_vs_serial\": {:.3} }}",
            secs * 1e3,
            serial / secs
        ));
        println!(
            "search_parallel: jobs={jobs} median {:.1} ms ({:.2}x vs serial)",
            secs * 1e3,
            serial / secs
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"search_parallel\",\n  \"workload\": \"fig7 job_frontier sweep, totals {TOTALS:?}\",\n  \"available_parallelism\": {cpus},\n  \"samples_per_point\": 3,\n  \"runs\": [\n{rows}\n  ]\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_search.json");
    std::fs::write(path, json).expect("write BENCH_search.json");
    println!("search_parallel: wrote {path} (available_parallelism={cpus})");
}

fn bench_search_parallel(c: &mut Criterion) {
    write_bench_json();

    let mut group = c.benchmark_group("search_parallel");
    group.sample_size(10);
    for jobs in JOB_COUNTS {
        group.bench_function(format!("fig7_sweep_jobs{jobs}"), |b| {
            b.iter(|| black_box(run_sweep(black_box(jobs))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search_parallel);
criterion_main!(benches);
