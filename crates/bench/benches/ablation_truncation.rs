//! Ablation: CTMC truncation depth — state-space size, solve time, and the
//! downtime estimate as the cap on concurrent failures grows. DESIGN.md's
//! claim that estimates converge by depth ~5 is measured here (the bench
//! also prints the estimates once at startup).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aved::avail::{derive_tier_model, AvailabilityEngine, CtmcEngine, TierModel};
use aved::model::{FailureScope, ParamValue, Sizing, TierDesign};
use aved::scenario;

fn paper_model() -> TierModel {
    let infra = scenario::infrastructure().unwrap();
    let td = TierDesign::new("application", "rC", 6, 1).with_setting(
        "maintenanceA",
        "level",
        ParamValue::Level("bronze".into()),
    );
    derive_tier_model(&infra, &td, Sizing::Dynamic, FailureScope::Resource, 4).unwrap()
}

fn bench_truncation(c: &mut Criterion) {
    let model = paper_model();

    // Print the convergence table once, as the ablation's data.
    println!("truncation-depth ablation (rC tier, n=6, m=4, s=1):");
    println!("{:>6} {:>22}", "depth", "downtime (min/yr)");
    for depth in 2..=7 {
        let engine = CtmcEngine::default().with_max_concurrent(depth);
        let dt = engine.evaluate(&model).unwrap().annual_downtime().minutes();
        println!("{depth:>6} {dt:>22.6}");
    }

    let mut group = c.benchmark_group("truncation");
    group.sample_size(10);
    for depth in [3_u32, 5, 7] {
        group.bench_function(format!("depth{depth}"), |b| {
            let engine = CtmcEngine::default().with_max_concurrent(depth);
            b.iter(|| black_box(engine.evaluate(black_box(&model)).unwrap().unavailability()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_truncation);
criterion_main!(benches);
