//! Benchmark of the CTMC substrate itself: dense Gaussian elimination vs
//! uniformized power iteration on chains of growing size, plus the
//! birth–death closed form as the floor.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aved::markov::{
    birth_death, CtmcBuilder, DenseSolver, GaussSeidelSolver, PowerSolver, SteadyStateSolver,
};

/// A machine-repairman chain with `n + 1` states.
fn repair_chain(n: usize) -> aved::markov::Ctmc {
    let lambda = 1e-3;
    let mu = 0.5;
    let mut b = CtmcBuilder::new(n + 1);
    for k in 0..n {
        b.rate(k, k + 1, (n - k) as f64 * lambda);
        b.rate(k + 1, k, (k + 1) as f64 * mu);
    }
    b.build().unwrap()
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov_solvers");
    group.sample_size(10);

    for n in [16_usize, 64, 256] {
        let ctmc = repair_chain(n);
        group.bench_function(format!("dense_n{}", n + 1), |b| {
            let solver = DenseSolver::new();
            b.iter(|| black_box(solver.steady_state(black_box(&ctmc)).unwrap()[0]));
        });
        group.bench_function(format!("power_n{}", n + 1), |b| {
            let solver = PowerSolver::new(1e-12, 10_000_000);
            b.iter(|| black_box(solver.steady_state(black_box(&ctmc)).unwrap()[0]));
        });
        group.bench_function(format!("gauss_seidel_n{}", n + 1), |b| {
            let solver = GaussSeidelSolver::default();
            b.iter(|| black_box(solver.steady_state(black_box(&ctmc)).unwrap()[0]));
        });
        group.bench_function(format!("birth_death_n{}", n + 1), |b| {
            let lambda = 1e-3;
            let mu = 0.5;
            let births: Vec<f64> = (0..n).map(|k| (n - k) as f64 * lambda).collect();
            let deaths: Vec<f64> = (0..n).map(|k| (k + 1) as f64 * mu).collect();
            b.iter(|| black_box(birth_death::steady_state(&births, &deaths).unwrap()[0]));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
