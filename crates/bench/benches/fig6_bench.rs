//! Benchmark: the work behind one Fig.-6 data point and one full column.
//!
//! `fig6_point` is a single optimal-design search at a (load, downtime)
//! requirement; `fig6_frontier` is the full cost/downtime frontier at one
//! load (one column of the figure).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aved::avail::DecompositionEngine;
use aved::scenario;
use aved::search::{search_tier, tier_pareto_frontier, CachingEngine, EvalContext, SearchOptions};
use aved::units::Duration;

fn bench_fig6(c: &mut Criterion) {
    let infrastructure = scenario::infrastructure().unwrap();
    let service = scenario::ecommerce().unwrap();
    let catalog = scenario::catalog();
    let options = SearchOptions::default();

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);

    group.bench_function("point_load1000_budget100m", |b| {
        b.iter(|| {
            // A fresh cache each iteration: measure the uncached search.
            let inner = DecompositionEngine::default();
            let engine = CachingEngine::new(&inner);
            let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
            let out = search_tier(
                &ctx,
                "application",
                black_box(1000.0),
                Duration::from_mins(100.0),
                &options,
            )
            .unwrap();
            black_box(out.best().map(|e| e.cost()));
        });
    });

    group.bench_function("frontier_load1000", |b| {
        b.iter(|| {
            let inner = DecompositionEngine::default();
            let engine = CachingEngine::new(&inner);
            let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
            let frontier =
                tier_pareto_frontier(&ctx, "application", black_box(1000.0), &options).unwrap();
            black_box(frontier.len());
        });
    });

    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
