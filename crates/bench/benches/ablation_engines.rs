//! Ablation: evaluation time of the three availability engines on the same
//! paper-derived tier model (exact CTMC vs per-class decomposition vs
//! Monte Carlo), quantifying the speed/fidelity tradeoff DESIGN.md calls
//! out.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aved::avail::{
    derive_tier_model, AvailabilityEngine, CtmcEngine, DecompositionEngine, SimulationEngine,
    TierModel,
};
use aved::model::{FailureScope, ParamValue, Sizing, TierDesign};
use aved::scenario;

fn paper_model(n: u32, s: u32) -> TierModel {
    let infra = scenario::infrastructure().unwrap();
    let td = TierDesign::new("application", "rC", n, s).with_setting(
        "maintenanceA",
        "level",
        ParamValue::Level("bronze".into()),
    );
    derive_tier_model(
        &infra,
        &td,
        Sizing::Dynamic,
        FailureScope::Resource,
        n.min(5),
    )
    .unwrap()
}

fn bench_engines(c: &mut Criterion) {
    let small = paper_model(5, 1);
    let large = paper_model(50, 2);

    let mut group = c.benchmark_group("engines");
    group.sample_size(10);

    for (label, model) in [("n5_s1", &small), ("n50_s2", &large)] {
        group.bench_function(format!("ctmc_{label}"), |b| {
            let engine = CtmcEngine::default();
            b.iter(|| black_box(engine.evaluate(black_box(model)).unwrap().unavailability()));
        });
        group.bench_function(format!("decomposition_{label}"), |b| {
            let engine = DecompositionEngine::default();
            b.iter(|| black_box(engine.evaluate(black_box(model)).unwrap().unavailability()));
        });
        group.bench_function(format!("simulation_200y_{label}"), |b| {
            let engine = SimulationEngine::new(7).with_years(200.0);
            b.iter(|| black_box(engine.evaluate(black_box(model)).unwrap().unavailability()));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
