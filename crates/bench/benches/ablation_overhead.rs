//! Ablation: the checkpoint-overhead form (`1 + c/cpi` vs the literal
//! `max(c/cpi, 100%)` of Table 1) — the modeling decision DESIGN.md logs
//! as item 3. The bench prints, once, the optimal checkpoint interval each
//! form produces across failure environments, showing why the smooth form
//! is required to reproduce Fig. 7's rising-interval trend; it then times
//! the interval optimization under both forms.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aved::jobtime::optimal_checkpoint_interval;
use aved::perf::{CheckpointOverhead, OverheadForm, StorageLocation};
use aved::units::Duration;

fn candidates() -> Vec<Duration> {
    let mut out = Vec::new();
    let mut v = Duration::from_mins(1.0);
    while v <= Duration::from_hours(24.0) {
        out.push(v);
        v = v * 1.05;
    }
    out
}

fn optimal_for(form: OverheadForm, mtbf: Duration) -> Duration {
    let mperf = CheckpointOverhead::new(10.0, 30, 3.0, 20.0).with_form(form);
    let base = Duration::from_hours(100.0);
    let cands = candidates();
    let (best, _) = optimal_checkpoint_interval(&cands, mtbf, 1.0, |cpi| {
        base * mperf.multiplier(StorageLocation::Central, cpi, 10)
    })
    .expect("candidates nonempty");
    best
}

fn bench_overhead(c: &mut Criterion) {
    println!("optimal checkpoint interval by overhead form (rH central, 10 nodes):");
    println!(
        "{:>12} {:>16} {:>16}",
        "MTBF", "smooth (min)", "piecewise (min)"
    );
    for mtbf_h in [2.0, 24.0, 168.0, 1000.0] {
        let mtbf = Duration::from_hours(mtbf_h);
        println!(
            "{:>12} {:>16.1} {:>16.1}",
            format!("{mtbf_h} h"),
            optimal_for(OverheadForm::Smooth, mtbf).minutes(),
            optimal_for(OverheadForm::PiecewiseMax, mtbf).minutes(),
        );
    }
    println!("(smooth tracks sqrt(2*c*MTBF); piecewise pins to the cost knee)");

    let mut group = c.benchmark_group("overhead_form");
    group.sample_size(10);
    for (label, form) in [
        ("smooth", OverheadForm::Smooth),
        ("piecewise", OverheadForm::PiecewiseMax),
    ] {
        group.bench_function(format!("optimize_interval_{label}"), |b| {
            let mtbf = Duration::from_hours(24.0);
            b.iter(|| black_box(optimal_for(black_box(form), mtbf)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
