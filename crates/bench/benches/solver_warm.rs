//! Benchmark: warm-started steady-state solves vs cold solves over a
//! Fig.-7-style candidate sweep.
//!
//! The workload is the exact stream of *distinct* availability models the
//! scientific-service computation-tier frontier sweep produces (duplicates
//! removed, as the model cache would), solved by the exact CTMC engine on
//! its iterative path (`with_dense_cutover(0)`, so every solve is
//! warm-startable Gauss-Seidel/power iteration rather than dense
//! elimination). The cold pass gives every model a fresh `EvalSession`;
//! the warm pass reuses one session across the locality-ordered stream,
//! so each solve can repatch the previous chain in place and start from
//! the neighboring steady state.
//!
//! Besides the criterion timings, one set of measurements goes to
//! `BENCH_solver.json` at the repository root: median wall time per
//! candidate cold vs warm, total solver iterations cold vs warm, and the
//! warm-hint hit rate.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;

use aved::avail::{
    derive_tier_model, AvailabilityEngine, CtmcEngine, EvalSession, SessionStats, TierModel,
};

use aved::scenario;
use aved::search::{enumerate_tier_candidates, EvalContext, SearchOptions};

const TOTALS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

fn options() -> SearchOptions {
    SearchOptions {
        max_extra_active: 2,
        max_spares: 2,
        ..SearchOptions::default()
    }
}

/// The distinct tier models of the Fig.-7-style sweep, in enumeration
/// (parameter-locality) order — the same stream a search worker's session
/// sees after the model cache absorbs exact duplicates (checkpoint
/// parameters change the completion-time math, not the chain).
fn sweep_models() -> Vec<TierModel> {
    let infrastructure = scenario::infrastructure().unwrap();
    let service = scenario::scientific().unwrap();
    let catalog = scenario::catalog();
    let probe = CtmcEngine::default();
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &probe);
    let tier = ctx.tier("computation").unwrap();
    let opts = options();
    let mut models: Vec<TierModel> = Vec::new();
    for option in tier.options() {
        for &n_total in &TOTALS {
            for td in enumerate_tier_candidates(
                ctx.infrastructure(),
                tier.name(),
                option,
                n_total,
                1,
                &opts,
            ) {
                let model = derive_tier_model(
                    ctx.infrastructure(),
                    &td,
                    option.sizing(),
                    option.failure_scope(),
                    td.n_active(),
                )
                .unwrap();
                if !models.contains(&model) {
                    models.push(model);
                }
            }
        }
    }
    models
}

struct PassResult {
    per_candidate_us: Vec<f64>,
    total_wall_s: f64,
    stats: SessionStats,
}

/// Solves every model once. `warm`: one persistent session across the
/// stream; cold: a fresh session per model (no structure or state reuse).
fn run_pass(engine: &CtmcEngine, models: &[TierModel], warm: bool) -> PassResult {
    let mut session = EvalSession::new();
    let mut stats = SessionStats::default();
    let mut per_candidate_us = Vec::with_capacity(models.len());
    let started = Instant::now();
    for model in models {
        if !warm {
            session = EvalSession::new();
        }
        let t = Instant::now();
        black_box(engine.evaluate_with_session(model, &mut session).unwrap());
        per_candidate_us.push(t.elapsed().as_secs_f64() * 1e6);
        if !warm {
            stats.absorb(session.stats());
        }
    }
    if warm {
        stats.absorb(session.stats());
    }
    PassResult {
        per_candidate_us,
        total_wall_s: started.elapsed().as_secs_f64(),
        stats,
    }
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn write_bench_json() {
    let engine = CtmcEngine::default()
        .with_max_concurrent(8)
        .with_dense_cutover(0);
    let models = sweep_models();
    // Median of 3 passes each, pooling per-candidate samples.
    let mut cold_times = Vec::new();
    let mut warm_times = Vec::new();
    let mut cold_walls = Vec::new();
    let mut warm_walls = Vec::new();
    let mut cold_stats = SessionStats::default();
    let mut warm_stats = SessionStats::default();
    for i in 0..3 {
        let cold = run_pass(&engine, &models, false);
        let warm = run_pass(&engine, &models, true);
        cold_times.extend(cold.per_candidate_us.iter().copied());
        warm_times.extend(warm.per_candidate_us.iter().copied());
        cold_walls.push(cold.total_wall_s);
        warm_walls.push(warm.total_wall_s);
        if i == 0 {
            cold_stats = cold.stats;
            warm_stats = warm.stats;
        }
    }
    let cold_med = median(cold_times);
    let warm_med = median(warm_times);
    let cold_wall = median(cold_walls);
    let warm_wall = median(warm_walls);
    let hit_rate = warm_stats.warm_hits as f64 / warm_stats.solves.max(1) as f64;
    let iter_reduction = 1.0 - warm_stats.iterations as f64 / cold_stats.iterations.max(1) as f64;

    let json = format!(
        "{{\n  \"bench\": \"solver_warm\",\n  \"workload\": \"fig7-style computation-tier sweep, totals {TOTALS:?}, exact CTMC engine, iterative path\",\n  \"distinct_models\": {},\n  \"samples_per_point\": 3,\n  \"cold\": {{ \"median_wall_per_candidate_us\": {cold_med:.2}, \"median_total_wall_ms\": {:.2}, \"solver_iterations\": {} }},\n  \"warm\": {{ \"median_wall_per_candidate_us\": {warm_med:.2}, \"median_total_wall_ms\": {:.2}, \"solver_iterations\": {}, \"warm_hits\": {}, \"warm_hit_rate\": {hit_rate:.3}, \"rebuilds_avoided\": {}, \"iterations_saved\": {} }},\n  \"speedup_per_candidate\": {:.3},\n  \"iteration_reduction\": {iter_reduction:.3}\n}}\n",
        models.len(),
        cold_wall * 1e3,
        cold_stats.iterations,
        warm_wall * 1e3,
        warm_stats.iterations,
        warm_stats.warm_hits,
        warm_stats.rebuilds_avoided,
        warm_stats.iterations_saved,
        cold_med / warm_med,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    std::fs::write(path, &json).expect("write BENCH_solver.json");
    println!(
        "solver_warm: {} models, cold {cold_med:.1} us/candidate ({} iters), \
         warm {warm_med:.1} us/candidate ({} iters), {:.2}x per candidate, \
         {:.0}% fewer iterations, warm-hit rate {:.0}%",
        models.len(),
        cold_stats.iterations,
        warm_stats.iterations,
        cold_med / warm_med,
        iter_reduction * 100.0,
        hit_rate * 100.0
    );
    println!("solver_warm: wrote {path}");
}

fn bench_solver_warm(c: &mut Criterion) {
    write_bench_json();

    let engine = CtmcEngine::default()
        .with_max_concurrent(8)
        .with_dense_cutover(0);
    let models = sweep_models();
    let mut group = c.benchmark_group("solver_warm");
    group.sample_size(10);
    group.bench_function("sweep_cold", |b| {
        b.iter(|| black_box(run_pass(&engine, &models, false).total_wall_s));
    });
    group.bench_function("sweep_warm", |b| {
        b.iter(|| black_box(run_pass(&engine, &models, true).total_wall_s));
    });
    group.finish();
}

criterion_group!(benches, bench_solver_warm);
criterion_main!(benches);
