//! Ablation: the §4.1 cost-first pruned search vs the exhaustive frontier
//! sweep. The pruned search visits a fraction of the candidates (the bench
//! prints the counters once) while the `pruned_search_matches_exhaustive_
//! optimum` test in `aved-search` proves the optima coincide.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aved::avail::DecompositionEngine;
use aved::scenario;
use aved::search::{search_tier, tier_pareto_frontier, CachingEngine, EvalContext, SearchOptions};
use aved::units::Duration;

fn bench_pruning(c: &mut Criterion) {
    let infrastructure = scenario::infrastructure().unwrap();
    let service = scenario::ecommerce().unwrap();
    let catalog = scenario::catalog();
    let options = SearchOptions::default();
    let load = 1600.0;
    let budget = Duration::from_mins(100.0);

    // Print the work counters once.
    {
        let inner = DecompositionEngine::default();
        let engine = CachingEngine::new(&inner);
        let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
        let out = search_tier(&ctx, "application", load, budget, &options).unwrap();
        let stats = out.stats();
        println!(
            "pruned search: {} cost evals, {} quality evals, {} pruned by cost",
            stats.cost_evaluations, stats.quality_evaluations, stats.pruned_by_cost
        );
        let frontier = tier_pareto_frontier(&ctx, "application", load, &options).unwrap();
        println!("exhaustive frontier: {} Pareto steps", frontier.len());
    }

    let mut group = c.benchmark_group("pruning");
    group.sample_size(10);

    group.bench_function("pruned_search", |b| {
        b.iter(|| {
            let inner = DecompositionEngine::default();
            let engine = CachingEngine::new(&inner);
            let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
            let out = search_tier(&ctx, "application", black_box(load), budget, &options).unwrap();
            black_box(out.best().map(|e| e.cost()));
        });
    });

    group.bench_function("exhaustive_frontier", |b| {
        b.iter(|| {
            let inner = DecompositionEngine::default();
            let engine = CachingEngine::new(&inner);
            let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
            let frontier =
                tier_pareto_frontier(&ctx, "application", black_box(load), &options).unwrap();
            black_box(
                frontier
                    .iter()
                    .find(|e| e.annual_downtime() <= budget)
                    .map(|e| e.cost()),
            );
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
