//! Shared scaffolding for the figure-regeneration binaries and benches.
//!
//! Each binary regenerates the data behind one table or figure of the
//! paper's evaluation section (§5): `table1`, `spec_dump` (Figs. 3–5),
//! `fig6`, `fig7` and `fig8`. Outputs go to stdout as aligned tables and,
//! when `--csv DIR` is passed, to CSV files for plotting.

use std::fmt::Write as _;

use aved::model::ParamValue;
use aved::search::EvaluatedDesign;

/// The paper's design-family coordinates for Fig. 6:
/// `(resource, contract, n_extra, n_spare)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Family {
    /// Selected resource type (`rC`, ...).
    pub resource: String,
    /// Selected maintenance-contract level.
    pub contract: String,
    /// Active resources beyond the performance minimum.
    pub n_extra: u32,
    /// Inactive spares.
    pub n_spare: u32,
}

impl Family {
    /// Extracts the family coordinates from an evaluated design.
    #[must_use]
    pub fn of(e: &EvaluatedDesign) -> Family {
        let td = e.design();
        let contract = td
            .setting("maintenanceA", "level")
            .or_else(|| td.setting("maintenanceB", "level"))
            .map_or_else(|| "-".to_owned(), ToString::to_string);
        Family {
            resource: td.resource().as_str().to_owned(),
            contract,
            n_extra: e.n_extra(),
            n_spare: td.n_spare(),
        }
    }

    /// The checkpoint settings of a design, when present:
    /// `(interval, storage)`.
    #[must_use]
    pub fn checkpoint_of(e: &EvaluatedDesign) -> (String, String) {
        let td = e.design();
        let interval = match td.setting("checkpoint", "checkpoint_interval") {
            Some(ParamValue::Duration(d)) => format!("{:.1}m", d.minutes()),
            _ => "-".to_owned(),
        };
        let storage = td
            .setting("checkpoint", "storage_location")
            .map_or_else(|| "-".to_owned(), ToString::to_string);
        (interval, storage)
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "({}, {}, {}, {})",
            self.resource, self.contract, self.n_extra, self.n_spare
        )
    }
}

/// A geometric grid between `min` and `max` with `steps` points, inclusive.
///
/// # Panics
///
/// Panics if `min` or `max` are non-positive, `max < min`, or `steps < 2`.
#[must_use]
pub fn geometric_grid(min: f64, max: f64, steps: usize) -> Vec<f64> {
    assert!(
        min > 0.0 && max >= min,
        "grid bounds must be positive and ordered"
    );
    assert!(steps >= 2, "need at least two grid points");
    let ratio = (max / min).powf(1.0 / (steps - 1) as f64);
    (0..steps).map(|i| min * ratio.powi(i as i32)).collect()
}

/// A simple CSV accumulator (we avoid a csv dependency; the outputs are
/// plain numeric tables).
#[derive(Debug, Default, Clone)]
pub struct Csv {
    rows: Vec<String>,
}

impl Csv {
    /// Creates a CSV with a header row.
    #[must_use]
    pub fn with_header(columns: &[&str]) -> Csv {
        Csv {
            rows: vec![columns.join(",")],
        }
    }

    /// Appends a row of cells.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut line = String::new();
        for (i, c) in cells.into_iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "{}", c.as_ref());
        }
        self.rows.push(line);
    }

    /// Renders the CSV document.
    #[must_use]
    pub fn to_string_document(&self) -> String {
        let mut out = self.rows.join("\n");
        out.push('\n');
        out
    }

    /// Number of data rows (excluding the header).
    #[must_use]
    pub fn n_rows(&self) -> usize {
        self.rows.len().saturating_sub(1)
    }

    /// Writes to `dir/name` if `dir` is `Some`, creating the directory.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write_if(&self, dir: Option<&str>, name: &str) -> std::io::Result<()> {
        if let Some(dir) = dir {
            std::fs::create_dir_all(dir)?;
            std::fs::write(format!("{dir}/{name}"), self.to_string_document())?;
        }
        Ok(())
    }
}

/// Parses an optional `--csv DIR` argument from the process args.
#[must_use]
pub fn csv_dir_from_args() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_grid_endpoints_and_monotonicity() {
        let g = geometric_grid(0.1, 10_000.0, 26);
        assert_eq!(g.len(), 26);
        assert!((g[0] - 0.1).abs() < 1e-12);
        assert!((g[25] - 10_000.0).abs() / 10_000.0 < 1e-9);
        for w in g.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    #[should_panic(expected = "grid bounds")]
    fn bad_grid_panics() {
        let _ = geometric_grid(-1.0, 5.0, 3);
    }

    #[test]
    fn csv_accumulates() {
        let mut csv = Csv::with_header(&["a", "b"]);
        csv.row(["1", "2"]);
        csv.row(["3", "4"]);
        assert_eq!(csv.n_rows(), 2);
        assert_eq!(csv.to_string_document(), "a,b\n1,2\n3,4\n");
    }

    #[test]
    fn csv_write_if_writes_only_with_dir() {
        let mut csv = Csv::with_header(&["x"]);
        csv.row(["1"]);
        // None: no I/O performed, must succeed.
        csv.write_if(None, "never.csv").unwrap();
        let dir = std::env::temp_dir().join("aved-bench-csv-test");
        let dir_str = dir.to_str().unwrap().to_owned();
        csv.write_if(Some(&dir_str), "out.csv").unwrap();
        let read = std::fs::read_to_string(dir.join("out.csv")).unwrap();
        assert_eq!(
            read,
            "x
1
"
        );
    }

    #[test]
    fn family_display() {
        let f = Family {
            resource: "rC".into(),
            contract: "bronze".into(),
            n_extra: 1,
            n_spare: 0,
        };
        assert_eq!(f.to_string(), "(rC, bronze, 1, 0)");
    }
}
