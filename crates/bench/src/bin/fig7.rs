//! Regenerates the data behind the paper's Fig. 7: the optimal design of
//! the scientific application as a function of the job execution-time
//! requirement (1–1000 hours), with the maintenance contract fixed to
//! bronze as in the paper.
//!
//! The rows report the selected resource type (machineA-based `rH` vs
//! machineB-based `rI`), the node and spare counts, the checkpoint
//! interval and storage location, the design cost and the achieved
//! expected execution time.
//!
//! Usage: `cargo run --release -p aved-bench --bin fig7 [-- --csv results]`

use aved::avail::DecompositionEngine;
use aved::model::ParamValue;
use aved::scenario;
use aved::search::{search_job_tier, CachingEngine, EvalContext, SearchOptions};
use aved::units::Duration;
use aved_bench::{csv_dir_from_args, geometric_grid, Csv, Family};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv_dir = csv_dir_from_args();
    let infrastructure = scenario::infrastructure()?;
    let service = scenario::scientific()?;
    let catalog = scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let options = SearchOptions {
        max_spares: 3,
        ..SearchOptions::default()
    }
    .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
    .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()));

    println!("== Fig. 7: optimal scientific-application design vs execution-time requirement ==\n");
    println!(
        "{:>9} | {:>8} | {:>6} | {:>6} | {:>10} | {:>8} | {:>11} | {:>12}",
        "req (h)",
        "resource",
        "nodes",
        "spares",
        "interval",
        "storage",
        "cost ($/y)",
        "achieved (h)"
    );
    let mut csv = Csv::with_header(&[
        "requirement_hours",
        "resource",
        "n_active",
        "n_spare",
        "checkpoint_interval_minutes",
        "storage_location",
        "cost_dollars",
        "expected_hours",
    ]);
    for req in geometric_grid(1.0, 1000.0, 22) {
        let outcome = search_job_tier(&ctx, "computation", Duration::from_hours(req), &options)?;
        match outcome.best() {
            Some(best) => {
                let td = best.design();
                let (interval, storage) = Family::checkpoint_of(best);
                let achieved = best.expected_job_time().expect("job time").hours();
                println!(
                    "{req:>9.1} | {:>8} | {:>6} | {:>6} | {:>10} | {:>8} | {:>11.0} | {achieved:>12.2}",
                    td.resource().as_str(),
                    td.n_active(),
                    td.n_spare(),
                    interval,
                    storage,
                    best.cost().dollars(),
                );
                let interval_mins = match td.setting("checkpoint", "checkpoint_interval") {
                    Some(ParamValue::Duration(d)) => format!("{:.3}", d.minutes()),
                    _ => String::new(),
                };
                csv.row([
                    format!("{req:.3}"),
                    td.resource().as_str().to_owned(),
                    format!("{}", td.n_active()),
                    format!("{}", td.n_spare()),
                    interval_mins,
                    storage,
                    format!("{:.2}", best.cost().dollars()),
                    format!("{achieved:.3}"),
                ]);
            }
            None => println!("{req:>9.1} | infeasible"),
        }
    }
    csv.write_if(csv_dir.as_deref(), "fig7.csv")?;
    if let Some(dir) = csv_dir {
        println!("\nCSV written to {dir}/fig7.csv");
    }
    Ok(())
}
