//! Mission-time exhibit (extension): early-life availability of the
//! paper's application-tier designs — expected downtime across the first
//! days/weeks of operation and the mean time to first outage, contrasted
//! with the steady-state pro-rata the paper reports.
//!
//! Usage: `cargo run --release -p aved-bench --bin mission [-- --csv results]`

use aved::avail::{derive_tier_model, AvailabilityEngine, CtmcEngine};
use aved::model::{FailureScope, ParamValue, Sizing, TierDesign};
use aved::scenario;
use aved::units::Duration;
use aved_bench::{csv_dir_from_args, Csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv_dir = csv_dir_from_args();
    let infrastructure = scenario::infrastructure()?;
    let engine = CtmcEngine::default();

    // Representative Fig.-6 designs at load 1000 (m = 5).
    let designs: Vec<(&str, TierDesign)> = vec![
        (
            "family 1 (bronze, 0, 0)",
            TierDesign::new("application", "rC", 5, 0).with_setting(
                "maintenanceA",
                "level",
                ParamValue::Level("bronze".into()),
            ),
        ),
        (
            "family 3 (gold, 0, 0)",
            TierDesign::new("application", "rC", 5, 0).with_setting(
                "maintenanceA",
                "level",
                ParamValue::Level("gold".into()),
            ),
        ),
        (
            "spare family (bronze, 0, 1)",
            TierDesign::new("application", "rC", 5, 1).with_setting(
                "maintenanceA",
                "level",
                ParamValue::Level("bronze".into()),
            ),
        ),
        (
            "extra family (bronze, 1, 0)",
            TierDesign::new("application", "rC", 6, 0).with_setting(
                "maintenanceA",
                "level",
                ParamValue::Level("bronze".into()),
            ),
        ),
    ];

    println!("== Mission-time view of Fig.-6 designs (load 1000, m = 5) ==\n");
    println!(
        "{:<28} {:>14} {:>16} {:>16} {:>18}",
        "design", "MTTF (days)", "week dt (min)", "steady (min)", "year dt (min)"
    );
    let mut csv = Csv::with_header(&[
        "design",
        "mttf_days",
        "first_week_downtime_minutes",
        "steady_week_prorata_minutes",
        "annual_downtime_minutes",
    ]);
    for (label, td) in &designs {
        let model = derive_tier_model(
            &infrastructure,
            td,
            Sizing::Dynamic,
            FailureScope::Resource,
            5,
        )?;
        let steady = engine.evaluate(&model)?;
        let week = Duration::from_days(7.0);
        let early = engine.mission_downtime(&model, week, 32)?;
        let prorata = steady.unavailability() * week.minutes();
        let mttf = engine.mean_time_to_first_outage(&model)?;
        println!(
            "{label:<28} {:>14.1} {:>16.3} {:>16.3} {:>18.2}",
            mttf.days(),
            early.minutes(),
            prorata,
            steady.annual_downtime().minutes(),
        );
        csv.row([
            (*label).to_owned(),
            format!("{:.2}", mttf.days()),
            format!("{:.4}", early.minutes()),
            format!("{:.4}", prorata),
            format!("{:.2}", steady.annual_downtime().minutes()),
        ]);
    }
    println!(
        "\n(week dt = expected downtime in the first week from all-up; redundancy\n\
         multiplies MTTF far more than it divides steady-state downtime)"
    );
    csv.write_if(csv_dir.as_deref(), "mission.csv")?;
    if let Some(dir) = csv_dir {
        println!("CSV written to {dir}/mission.csv");
    }
    Ok(())
}
