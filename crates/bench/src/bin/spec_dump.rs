//! Parses the bundled specifications (the paper's Figs. 3, 4 and 5),
//! validates them, and prints them back in canonical form — demonstrating
//! the round-trip property of the specification language.
//!
//! Usage: `cargo run --release -p aved-bench --bin spec_dump`

use aved::scenario;
use aved::spec::{write_infrastructure, write_service};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let infrastructure = scenario::infrastructure()?;
    infrastructure.validate()?;
    println!("== Fig. 3: infrastructure model (canonical form) ==\n");
    println!("{}", write_infrastructure(&infrastructure));

    println!("== Fig. 4: e-commerce service model ==\n");
    println!("{}", write_service(&scenario::ecommerce()?));

    println!("== Fig. 5: scientific application model ==\n");
    println!("{}", write_service(&scenario::scientific()?));

    println!(
        "parsed: {} components, {} mechanisms, {} resources; both service models validate",
        infrastructure.components().count(),
        infrastructure.mechanisms().count(),
        infrastructure.resources().count(),
    );
    Ok(())
}
