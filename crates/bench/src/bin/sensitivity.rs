//! Robustness companion to Figs. 6–8: how the optimal application-tier
//! design reacts to errors in the failure-rate inputs (which the paper
//! admits were partly "estimated based on the authors' intuition").
//!
//! For each load and MTBF scale, the design search is re-run on the
//! perturbed infrastructure and compared against the unscaled baseline.
//!
//! Usage: `cargo run --release -p aved-bench --bin sensitivity [-- --csv results]`

use aved::avail::DecompositionEngine;
use aved::scenario;
use aved::search::{mtbf_sensitivity, CachingEngine, EvalContext, SearchOptions};
use aved::units::Duration;
use aved_bench::{csv_dir_from_args, Csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv_dir = csv_dir_from_args();
    let infrastructure = scenario::infrastructure()?;
    let service = scenario::ecommerce()?;
    let catalog = scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let options = SearchOptions::default();
    let scales = [0.25, 0.5, 1.0, 2.0, 4.0];
    let budget = Duration::from_mins(100.0);

    println!("== Sensitivity of the optimal application-tier design to MTBF errors ==");
    println!("(downtime budget {} min/yr)\n", budget.minutes());
    let mut csv = Csv::with_header(&[
        "load",
        "mtbf_scale",
        "cost_dollars",
        "downtime_minutes",
        "same_design_as_baseline",
    ]);
    for load in [400.0, 1600.0, 3200.0] {
        println!("load = {load}:");
        println!(
            "  {:>10} | {:>10} | {:>13} | same design?",
            "MTBF scale", "cost ($/y)", "downtime (m/y)"
        );
        let rows = mtbf_sensitivity(&ctx, "application", load, budget, &options, &scales)?;
        for row in rows {
            match (row.cost, row.annual_downtime) {
                (Some(cost), Some(dt)) => {
                    println!(
                        "  {:>10} | {:>10.0} | {:>13.2} | {}",
                        row.mtbf_scale,
                        cost.dollars(),
                        dt.minutes(),
                        if row.same_design_as_baseline {
                            "yes"
                        } else {
                            "no"
                        },
                    );
                    csv.row([
                        format!("{load}"),
                        format!("{}", row.mtbf_scale),
                        format!("{:.2}", cost.dollars()),
                        format!("{:.4}", dt.minutes()),
                        format!("{}", row.same_design_as_baseline),
                    ]);
                }
                _ => println!("  {:>10} | infeasible", row.mtbf_scale),
            }
        }
        println!();
    }
    csv.write_if(csv_dir.as_deref(), "sensitivity.csv")?;
    if let Some(dir) = csv_dir {
        println!("CSV written to {dir}/sensitivity.csv");
    }
    Ok(())
}
