//! Prints the paper's Table 1: the performance functions of the examples,
//! as implemented by `aved-perf::paper`, evaluated on a sample of node
//! counts so the closed forms are visible.
//!
//! Usage: `cargo run --release -p aved-bench --bin table1`

use aved::perf::{paper, StorageLocation};
use aved::units::Duration;

fn main() {
    println!("== Table 1: performance functions ==\n");
    println!("tier, resource            function");
    println!("application, rC/rD        performance(n) = 200*n");
    println!("application, rE/rF        performance(n) = 1600*n");
    println!("computation, rH           performance(n) = (10*n)/(1+0.004*n)");
    println!("computation, rI           performance(n) = (100*n)/(1+0.004*n)");
    println!();
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "n", "perfC", "perfE", "perfH", "perfI"
    );
    for n in [1_u32, 2, 5, 10, 30, 100, 300, 1000] {
        println!(
            "{n:>6} {:>10.0} {:>10.0} {:>12.1} {:>12.1}",
            paper::perf_c().throughput(n),
            paper::perf_e().throughput(n),
            paper::perf_h().throughput(n),
            paper::perf_i().throughput(n),
        );
    }

    println!("\n== Table 1: mperformance (execution-time multiplier; cpi in minutes) ==\n");
    println!("computation, rH  central: cost 10 (n<30), n/3 (n>=30); peer: cost 20");
    println!("computation, rI  central: cost 5 (n<30), n/6 (n>=30); peer: cost 100");
    println!(
        "(multiplier = 1 + cost/cpi; Table 1's max(cost/cpi, 100%) is its asymptotic envelope)\n"
    );
    println!(
        "{:>6} {:>6} | {:>12} {:>12} | {:>12} {:>12}",
        "n", "cpi", "rH central", "rH peer", "rI central", "rI peer"
    );
    for (n, cpi_min) in [
        (10_u32, 2.0_f64),
        (10, 20.0),
        (100, 2.0),
        (100, 20.0),
        (100, 120.0),
    ] {
        let cpi = Duration::from_mins(cpi_min);
        println!(
            "{n:>6} {cpi_min:>6} | {:>12.2} {:>12.2} | {:>12.2} {:>12.2}",
            paper::mperf_h().multiplier(StorageLocation::Central, cpi, n),
            paper::mperf_h().multiplier(StorageLocation::Peer, cpi, n),
            paper::mperf_i().multiplier(StorageLocation::Central, cpi, n),
            paper::mperf_i().multiplier(StorageLocation::Peer, cpi, n),
        );
    }
}
