//! Regenerates the data behind the paper's Fig. 8: the *additional annual
//! cost* of availability — relative to the minimum-cost design that merely
//! supports the load — as a function of the downtime requirement, for
//! loads of 400, 800, 1600 and 3200 units.
//!
//! Usage: `cargo run --release -p aved-bench --bin fig8 [-- --csv results]`

use aved::avail::DecompositionEngine;
use aved::scenario;
use aved::search::{tier_pareto_frontier, CachingEngine, EvalContext, SearchOptions};
use aved_bench::{csv_dir_from_args, geometric_grid, Csv};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv_dir = csv_dir_from_args();
    let infrastructure = scenario::infrastructure()?;
    let service = scenario::ecommerce()?;
    let catalog = scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let options = SearchOptions::default();

    let loads = [400.0, 800.0, 1600.0, 3200.0];
    let budgets = geometric_grid(0.1, 1000.0, 25);

    println!("== Fig. 8: extra annual cost of availability vs downtime requirement ==\n");
    print!("{:>14}", "budget (min/y)");
    for load in loads {
        print!("{:>12}", format!("load {load}"));
    }
    println!();

    let mut csv = Csv::with_header(&["load", "downtime_budget_minutes", "extra_cost_dollars"]);
    let mut frontiers = Vec::new();
    for &load in &loads {
        frontiers.push(tier_pareto_frontier(&ctx, "application", load, &options)?);
    }
    for &budget in &budgets {
        print!("{budget:>14.2}");
        for (frontier, &load) in frontiers.iter().zip(loads.iter()) {
            let base = frontier[0].cost();
            match frontier
                .iter()
                .find(|e| e.annual_downtime().minutes() <= budget)
            {
                Some(e) => {
                    let extra = (e.cost() - base).dollars();
                    print!("{extra:>12.0}");
                    csv.row([
                        format!("{load}"),
                        format!("{budget:.3}"),
                        format!("{extra:.2}"),
                    ]);
                }
                None => print!("{:>12}", "infeasible"),
            }
        }
        println!();
    }
    println!("\n(extra annual cost over the minimum-cost design supporting the same load)");
    csv.write_if(csv_dir.as_deref(), "fig8.csv")?;
    if let Some(dir) = csv_dir {
        println!("CSV written to {dir}/fig8.csv");
    }
    Ok(())
}
