//! Regenerates the data behind the paper's Fig. 6: the optimal design
//! family of the application tier as a function of the load requirement
//! (x: 400–5000 units) and the annual-downtime requirement (y: 0.1–10,000
//! minutes).
//!
//! For each load we compute the tier's cost/downtime Pareto frontier; each
//! frontier step is a design family `(resource, contract, n_extra,
//! n_spare)`, and the curve of a family across loads is the downtime it
//! delivers where it is optimal — exactly the curves the paper plots.
//!
//! Usage: `cargo run --release -p aved-bench --bin fig6 [-- --csv results]`

use std::collections::BTreeMap;

use aved::avail::DecompositionEngine;
use aved::scenario;
use aved::search::{tier_pareto_frontier, CachingEngine, EvalContext, SearchOptions};
use aved_bench::{csv_dir_from_args, Csv, Family};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let csv_dir = csv_dir_from_args();
    let infrastructure = scenario::infrastructure()?;
    let service = scenario::ecommerce()?;
    let catalog = scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let options = SearchOptions::default();

    let loads: Vec<f64> = (1..=25).map(|i| 200.0 * f64::from(i)).collect(); // 200..5000

    // family -> load -> (downtime minutes, cost)
    let mut curves: BTreeMap<Family, BTreeMap<u32, (f64, f64)>> = BTreeMap::new();
    for &load in &loads {
        let frontier = tier_pareto_frontier(&ctx, "application", load, &options)?;
        for e in &frontier {
            let dt = e.annual_downtime().minutes();
            if !(0.05..=20_000.0).contains(&dt) {
                continue; // outside the paper's plotted range
            }
            curves
                .entry(Family::of(e))
                .or_default()
                .insert(load as u32, (dt, e.cost().dollars()));
        }
    }

    // Family index, ordered by the downtime at their first load (top of the
    // plot first), mimicking the paper's legend numbering by decreasing
    // downtime.
    let mut families: Vec<(&Family, f64)> = curves
        .iter()
        .map(|(f, pts)| {
            let first = pts.values().next().map_or(f64::NAN, |&(dt, _)| dt);
            (f, first)
        })
        .collect();
    families.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("== Fig. 6: optimal design families of the application tier ==\n");
    println!("families (top curve first; coordinates are (resource, contract, n_extra, n_spare)):");
    for (i, (f, _)) in families.iter().enumerate() {
        println!("  {:>2} - {}", i + 1, f);
    }
    println!("\ndowntime (min/yr) delivered by each family at each load where it is optimal:");
    print!("{:>6}", "load");
    for (i, _) in families.iter().enumerate() {
        print!("{:>9}", format!("fam{}", i + 1));
    }
    println!();
    let mut csv = Csv::with_header(&[
        "load",
        "family",
        "resource",
        "contract",
        "n_extra",
        "n_spare",
        "downtime_minutes",
        "cost_dollars",
    ]);
    for &load in &loads {
        print!("{load:>6}");
        for (i, (family, _)) in families.iter().enumerate() {
            match curves[family].get(&(load as u32)) {
                Some(&(dt, cost)) => {
                    print!("{dt:>9.2}");
                    csv.row([
                        format!("{load}"),
                        format!("{}", i + 1),
                        family.resource.clone(),
                        family.contract.clone(),
                        format!("{}", family.n_extra),
                        format!("{}", family.n_spare),
                        format!("{dt:.4}"),
                        format!("{cost:.2}"),
                    ]);
                }
                None => print!("{:>9}", "."),
            }
        }
        println!();
    }
    println!(
        "\n{} families; {} (load, family) points within the plotted range",
        families.len(),
        csv.n_rows()
    );
    csv.write_if(csv_dir.as_deref(), "fig6.csv")?;
    if let Some(dir) = csv_dir {
        println!("CSV written to {dir}/fig6.csv");
    }
    Ok(())
}
