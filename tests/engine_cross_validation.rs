//! Integration tests: the three availability engines agree with each other
//! on models derived from the paper's scenario.

use aved::avail::{
    derive_tier_model, AvailabilityEngine, CtmcEngine, DecompositionEngine, SimulationEngine,
};
use aved::model::{FailureScope, ParamValue, Sizing, SpareMode, TierDesign};
use aved::scenario;

fn paper_design(level: &str, n: u32, s: u32) -> TierDesign {
    TierDesign::new("application", "rC", n, s)
        .with_spare_mode(SpareMode::AllInactive)
        .with_setting("maintenanceA", "level", ParamValue::Level(level.into()))
}

fn derived(level: &str, n: u32, s: u32, m: u32) -> aved::avail::TierModel {
    let infra = scenario::infrastructure().unwrap();
    derive_tier_model(
        &infra,
        &paper_design(level, n, s),
        Sizing::Dynamic,
        FailureScope::Resource,
        m,
    )
    .unwrap()
}

#[test]
fn ctmc_and_decomposition_agree_on_single_point_of_failure() {
    // m = n: every failure is an outage; overlap effects are negligible, so
    // both engines agree tightly.
    let model = derived("bronze", 2, 0, 2);
    let exact = CtmcEngine::default().evaluate(&model).unwrap();
    let fast = DecompositionEngine::default().evaluate(&model).unwrap();
    let rel = (exact.unavailability() - fast.unavailability()).abs() / exact.unavailability();
    assert!(rel < 0.02, "relative gap {rel}");
}

#[test]
fn ctmc_and_decomposition_agree_with_redundancy() {
    // n_extra = 1: downtime needs overlapping failures. Decomposition
    // misses cross-class overlap, so it underestimates, but must stay
    // within a factor ~2 of the exact joint chain for paper-like rates.
    let model = derived("bronze", 3, 0, 2);
    let exact = CtmcEngine::default().evaluate(&model).unwrap();
    let fast = DecompositionEngine::default().evaluate(&model).unwrap();
    assert!(fast.unavailability() <= exact.unavailability() * 1.001);
    assert!(
        fast.unavailability() >= exact.unavailability() * 0.3,
        "fast {} vs exact {}",
        fast.unavailability(),
        exact.unavailability()
    );
}

#[test]
fn simulation_confirms_ctmc_on_paper_tier_no_spares() {
    let model = derived("bronze", 2, 0, 2);
    let exact = CtmcEngine::default().evaluate(&model).unwrap();
    let sim = SimulationEngine::new(2024)
        .with_years(3000.0)
        .evaluate(&model)
        .unwrap();
    let rel = (exact.unavailability() - sim.unavailability()).abs() / exact.unavailability();
    assert!(
        rel < 0.1,
        "sim {} vs ctmc {} (rel {rel})",
        sim.unavailability(),
        exact.unavailability()
    );
}

#[test]
fn simulation_confirms_ctmc_with_spares_and_failover() {
    let model = derived("gold", 2, 1, 2);
    let exact = CtmcEngine::default().evaluate(&model).unwrap();
    let sim = SimulationEngine::new(7)
        .with_years(30_000.0)
        .evaluate(&model)
        .unwrap();
    let rel = (exact.unavailability() - sim.unavailability()).abs() / exact.unavailability();
    assert!(
        rel < 0.15,
        "sim {} vs ctmc {} (rel {rel})",
        sim.unavailability(),
        exact.unavailability()
    );
}

#[test]
fn down_event_rates_agree_between_ctmc_and_simulation() {
    let model = derived("bronze", 2, 0, 2);
    let exact = CtmcEngine::default().evaluate(&model).unwrap();
    let sim = SimulationEngine::new(99)
        .with_years(3000.0)
        .evaluate(&model)
        .unwrap();
    let (a, b) = (
        exact.down_event_rate().per_hour_value(),
        sim.down_event_rate().per_hour_value(),
    );
    assert!((a - b).abs() / a < 0.1, "ctmc {a} vs sim {b}");
}

#[test]
fn engines_rank_maintenance_levels_identically() {
    let engines: Vec<Box<dyn AvailabilityEngine>> = vec![
        Box::new(CtmcEngine::default()),
        Box::new(DecompositionEngine::default()),
    ];
    for engine in &engines {
        let bronze = engine.evaluate(&derived("bronze", 2, 0, 2)).unwrap();
        let gold = engine.evaluate(&derived("gold", 2, 0, 2)).unwrap();
        let platinum = engine.evaluate(&derived("platinum", 2, 0, 2)).unwrap();
        assert!(bronze.unavailability() > gold.unavailability());
        assert!(gold.unavailability() > platinum.unavailability());
    }
}

#[test]
fn paper_magnitudes_family1_and_family3() {
    // Family 1 of Fig. 6 (rC, bronze, no redundancy): the downtime is
    // dominated by hard failures at 38-hour repairs. At the smallest load
    // (m = n = 2) the paper's curve starts in the low thousands of minutes
    // per year. Family 3 (gold contract, 8-hour repairs) sits several times
    // lower.
    let engine = CtmcEngine::default();
    let bronze = engine.evaluate(&derived("bronze", 2, 0, 2)).unwrap();
    let gold = engine.evaluate(&derived("gold", 2, 0, 2)).unwrap();
    let bronze_mins = bronze.annual_downtime().minutes();
    let gold_mins = gold.annual_downtime().minutes();
    assert!(
        (1500.0..6000.0).contains(&bronze_mins),
        "family-1 magnitude: {bronze_mins} min/yr"
    );
    assert!(
        (400.0..1500.0).contains(&gold_mins),
        "family-3 magnitude: {gold_mins} min/yr"
    );
    assert!(bronze_mins / gold_mins > 2.0);
}

#[test]
fn deterministic_repairs_keep_the_same_order_of_magnitude() {
    use aved::avail::RepairDistribution;
    let model = derived("bronze", 2, 0, 2);
    let exp = SimulationEngine::new(5)
        .with_years(2000.0)
        .evaluate(&model)
        .unwrap();
    let det = SimulationEngine::new(5)
        .with_years(2000.0)
        .with_distribution(RepairDistribution::Deterministic)
        .evaluate(&model)
        .unwrap();
    let ratio = det.unavailability() / exp.unavailability();
    assert!(
        (0.5..2.0).contains(&ratio),
        "distribution sensitivity ratio {ratio}"
    );
}

#[test]
fn derived_scientific_model_has_tier_scope_semantics() {
    // For the scientific application (failurescope = tier), m = n: a single
    // failure anywhere takes the tier down.
    let infra = scenario::infrastructure().unwrap();
    let td = TierDesign::new("computation", "rH", 30, 1)
        .with_setting("maintenanceA", "level", ParamValue::Level("bronze".into()))
        .with_setting(
            "checkpoint",
            "storage_location",
            ParamValue::Level("central".into()),
        )
        .with_setting(
            "checkpoint",
            "checkpoint_interval",
            ParamValue::Duration(aved::units::Duration::from_mins(30.0)),
        );
    let model = derive_tier_model(&infra, &td, Sizing::Static, FailureScope::Tier, 1).unwrap();
    assert_eq!(model.m(), model.n());
    // 30 nodes x 4 failure classes: the tier fails every day or two.
    let mtbf = model.tier_failure_rate().mean_time();
    assert!(
        mtbf.days() > 0.3 && mtbf.days() < 3.0,
        "tier MTBF {} days",
        mtbf.days()
    );
}
