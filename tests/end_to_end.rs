//! Integration tests: the full Aved facade on the paper's scenario and a
//! programmatically built one.

use aved::model::{
    ComponentType, FailureMode, FailureScope, Infrastructure, NActiveSpec, ParamValue, PerfRef,
    ResourceComponent, ResourceOption, ResourceType, Service, Sizing, Tier,
};
use aved::perf::{Catalog, PerfFunction};
use aved::scenario;
use aved::units::{Duration, Money};
use aved::{Aved, SearchOptions, ServiceRequirement};

fn small_options() -> SearchOptions {
    SearchOptions {
        max_extra_active: 2,
        max_spares: 1,
        ..SearchOptions::default()
    }
}

#[test]
fn paper_ecommerce_design_is_reproducible_and_valid() {
    let aved = Aved::new(scenario::infrastructure().unwrap())
        .with_catalog(scenario::catalog())
        .with_search_options(small_options());
    let service = scenario::ecommerce().unwrap();
    let req = ServiceRequirement::enterprise(800.0, Duration::from_mins(3000.0));
    let a = aved.design(&service, &req).unwrap().expect("feasible");
    let b = aved.design(&service, &req).unwrap().expect("feasible");
    assert_eq!(a, b, "design runs are deterministic");
    // The produced design validates against the models.
    a.design()
        .validate(aved.infrastructure(), &service)
        .unwrap();
    // And its cost re-computes to the same figure.
    let recomputed = aved::model::design_cost(aved.infrastructure(), a.design())
        .unwrap()
        .total();
    assert_eq!(recomputed, a.cost());
}

#[test]
fn tightening_the_budget_never_gets_cheaper() {
    let aved = Aved::new(scenario::infrastructure().unwrap())
        .with_catalog(scenario::catalog())
        .with_search_options(small_options());
    let service = scenario::ecommerce().unwrap();
    let mut last = Money::ZERO;
    for budget in [8000.0, 2000.0, 500.0] {
        let req = ServiceRequirement::enterprise(400.0, Duration::from_mins(budget));
        let report = aved.design(&service, &req).unwrap().expect("feasible");
        assert!(
            report.cost() >= last,
            "budget {budget}: {} < {last}",
            report.cost()
        );
        assert!(report.annual_downtime().unwrap() <= Duration::from_mins(budget));
        last = report.cost();
    }
}

#[test]
fn scientific_design_meets_deadline_and_validates() {
    let options = SearchOptions {
        max_extra_active: 1,
        max_spares: 1,
        ..SearchOptions::default()
    }
    .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
    .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()));
    let aved = Aved::new(scenario::infrastructure().unwrap())
        .with_catalog(scenario::catalog())
        .with_search_options(options);
    let service = scenario::scientific().unwrap();
    let req = ServiceRequirement::job(Duration::from_hours(100.0));
    let report = aved.design(&service, &req).unwrap().expect("feasible");
    assert!(report.expected_job_time().unwrap() <= Duration::from_hours(100.0));
    report
        .design()
        .validate(aved.infrastructure(), &service)
        .unwrap();
    let td = &report.design().tiers()[0];
    assert!(td.setting("checkpoint", "checkpoint_interval").is_some());
    assert!(td.setting("checkpoint", "storage_location").is_some());
}

#[test]
fn exact_engine_and_fast_engine_agree_on_the_chosen_design() {
    // Same search once with the decomposition engine and once with the
    // exact CTMC: the selected design families must agree for paper-scale
    // requirements (their downtime estimates differ by far less than the
    // gaps between families).
    let service = scenario::ecommerce().unwrap();
    let req = ServiceRequirement::enterprise(400.0, Duration::from_mins(1000.0));
    let fast = Aved::new(scenario::infrastructure().unwrap())
        .with_catalog(scenario::catalog())
        .with_search_options(small_options())
        .design(&service, &req)
        .unwrap()
        .expect("feasible");
    let exact = Aved::new(scenario::infrastructure().unwrap())
        .with_catalog(scenario::catalog())
        .with_engine(aved::CtmcEngine::default())
        .with_search_options(small_options())
        .design(&service, &req)
        .unwrap()
        .expect("feasible");
    assert_eq!(fast.design(), exact.design());
}

#[test]
fn max_instances_constrains_the_search() {
    // A bounded component supply must keep designs within the bound.
    let infrastructure = Infrastructure::new()
        .with_component(
            ComponentType::new("box")
                .with_cost(Money::from_dollars(100.0))
                .with_max_instances(3)
                .with_failure_mode(FailureMode::new(
                    "soft",
                    Duration::from_days(10.0),
                    Duration::ZERO,
                    Duration::ZERO,
                )),
        )
        .with_resource(ResourceType::new("node", Duration::ZERO).with_component(
            ResourceComponent::new("box", None, Duration::from_mins(1.0)),
        ));
    let service = Service::new("svc").with_tier(Tier::new("t").with_option(ResourceOption::new(
        "node",
        Sizing::Dynamic,
        FailureScope::Resource,
        NActiveSpec::Arithmetic {
            min: 1,
            max: 100,
            step: 1,
        },
        PerfRef::Named("p".into()),
    )));
    let mut catalog = Catalog::new();
    catalog.insert_perf("p", PerfFunction::linear(10.0));
    let aved = Aved::new(infrastructure).with_catalog(catalog);
    let report = aved
        .design(
            &service,
            &ServiceRequirement::enterprise(20.0, Duration::from_mins(50_000.0)),
        )
        .unwrap()
        .expect("feasible");
    // The search found a design; validating it against max_instances works
    // because it needs only 2-3 boxes.
    report
        .design()
        .validate(aved.infrastructure(), &service)
        .unwrap();
    assert!(report.design().tiers()[0].n_total() <= 3);
}

#[test]
fn infeasible_load_yields_none() {
    // The database tier saturates at 10000 units.
    let aved = Aved::new(scenario::infrastructure().unwrap())
        .with_catalog(scenario::catalog())
        .with_search_options(small_options());
    let req = ServiceRequirement::enterprise(20_000.0, Duration::from_mins(10_000.0));
    assert!(aved
        .design(&scenario::ecommerce().unwrap(), &req)
        .unwrap()
        .is_none());
}
