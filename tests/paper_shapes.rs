//! Integration tests: qualitative shape assertions for the paper's
//! evaluation figures (§5). We do not chase absolute numbers — the paper's
//! software failure rates were the authors' estimates — but every
//! comparative claim the paper makes about Figs. 6, 7 and 8 is asserted
//! here against our engines.

use aved::avail::DecompositionEngine;
use aved::model::ParamValue;
use aved::scenario;
use aved::search::{
    search_job_tier, tier_pareto_frontier, CachingEngine, EvalContext, EvaluatedDesign,
    SearchOptions,
};
use aved::units::Duration;

struct Fx {
    infrastructure: aved::Infrastructure,
    service: aved::Service,
    catalog: aved::Catalog,
}

fn ecommerce_fx() -> Fx {
    Fx {
        infrastructure: scenario::infrastructure().unwrap(),
        service: scenario::ecommerce().unwrap(),
        catalog: scenario::catalog(),
    }
}

fn scientific_fx() -> Fx {
    Fx {
        infrastructure: scenario::infrastructure().unwrap(),
        service: scenario::scientific().unwrap(),
        catalog: scenario::catalog(),
    }
}

fn frontier_at(fx: &Fx, load: f64) -> Vec<EvaluatedDesign> {
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    tier_pareto_frontier(&ctx, "application", load, &SearchOptions::default()).unwrap()
}

fn family(e: &EvaluatedDesign) -> (String, String, u32, u32) {
    let td = e.design();
    let level = td
        .setting("maintenanceA", "level")
        .or_else(|| td.setting("maintenanceB", "level"))
        .map_or_else(|| "-".to_owned(), ToString::to_string);
    (
        td.resource().as_str().to_owned(),
        level,
        e.n_extra(),
        td.n_spare(),
    )
}

// ---------------------------------------------------------------------
// Fig. 6: optimal design families over (load, downtime).
// ---------------------------------------------------------------------

#[test]
fn fig6_machinea_dominates_within_plotted_range() {
    // "the more powerful machineB is never selected" (within the plotted
    // 0.1..10000 min/yr range).
    for load in [400.0, 1400.0, 3000.0, 5000.0] {
        for e in frontier_at(&ecommerce_fx(), load)
            .iter()
            .filter(|e| e.annual_downtime().minutes() >= 0.1)
        {
            let (resource, ..) = family(e);
            assert!(
                resource == "rC" || resource == "rD",
                "load {load}: {resource} selected at {} min/yr",
                e.annual_downtime().minutes()
            );
        }
    }
}

#[test]
fn fig6_cheapest_family_is_bronze_without_redundancy() {
    // The bottom of the requirement space is family 1:
    // (machineA/linux/appserverA, bronze, 0, 0).
    let frontier = frontier_at(&ecommerce_fx(), 400.0);
    let (resource, level, n_extra, n_spare) = family(&frontier[0]);
    assert_eq!(resource, "rC");
    assert_eq!(level, "bronze");
    assert_eq!(n_extra, 0);
    assert_eq!(n_spare, 0);
}

#[test]
fn fig6_contract_upgrades_precede_redundancy() {
    // Moving up the frontier from family 1, the next steps upgrade the
    // maintenance contract (families 2, 3, 5) before paying for whole
    // extra machines (families 6+) — at low load, where a contract costs
    // less than a machine.
    let frontier = frontier_at(&ecommerce_fx(), 400.0);
    let families: Vec<_> = frontier.iter().map(family).collect();
    let first_upgrade = families
        .iter()
        .position(|(_, level, ..)| level != "bronze")
        .expect("contract upgrades appear on the frontier");
    let first_redundancy = families
        .iter()
        .position(|(_, _, n_extra, n_spare)| *n_extra > 0 || *n_spare > 0)
        .expect("redundancy appears on the frontier");
    assert!(first_upgrade < first_redundancy, "families: {families:?}");
}

#[test]
fn fig6_downtime_of_a_family_increases_with_load() {
    // "the downtime estimated for a particular design family increases
    // with load": more machines to meet the load -> higher failure rate.
    let fx = ecommerce_fx();
    let downtime_of_family1 = |load: f64| -> f64 {
        frontier_at(&fx, load)
            .iter()
            .find(|e| {
                let (r, level, x, s) = family(e);
                r == "rC" && level == "bronze" && x == 0 && s == 0
            })
            .map(|e| e.annual_downtime().minutes())
            .expect("family 1 exists at every load")
    };
    let d400 = downtime_of_family1(400.0);
    let d1600 = downtime_of_family1(1600.0);
    let d4000 = downtime_of_family1(4000.0);
    assert!(d400 < d1600 && d1600 < d4000, "{d400} {d1600} {d4000}");
}

#[test]
fn fig6_gold_contract_loses_to_extra_resource_at_high_load() {
    // The family-3-vs-6 crossover: at low loads a gold contract is cheaper
    // than an extra resource + bronze; as load grows, the contract's
    // per-machine cost overtakes the one-off extra machine.
    let costs = |load: f64| -> (f64, f64) {
        let m = (load / 200.0).ceil();
        // Family 3: m machines, gold contract on each.
        let family3 = m * (2640.0 + 1700.0) + m * 760.0;
        // Family 6-like: m machines + 1 inactive spare, bronze on all.
        let family6 = m * (2640.0 + 1700.0) + 2400.0 + (m + 1.0) * 380.0;
        (family3, family6)
    };
    let (f3_low, f6_low) = costs(400.0);
    assert!(
        f3_low < f6_low,
        "at low load gold is cheaper: {f3_low} vs {f6_low}"
    );
    let (f3_high, f6_high) = costs(4000.0);
    assert!(
        f3_high > f6_high,
        "at high load the extra resource is cheaper: {f3_high} vs {f6_high}"
    );
}

#[test]
fn fig6_frontier_downtime_spans_the_plotted_decades() {
    // The paper's y axis runs from fractions of a minute to ~10^4 minutes;
    // the frontier must span that dynamic range.
    let frontier = frontier_at(&ecommerce_fx(), 1000.0);
    let max = frontier
        .iter()
        .map(|e| e.annual_downtime().minutes())
        .fold(f64::NEG_INFINITY, f64::max);
    let min = frontier
        .iter()
        .map(|e| e.annual_downtime().minutes())
        .fold(f64::INFINITY, f64::min);
    assert!(max > 1000.0, "worst family ~{max} min/yr");
    assert!(min < 1.0, "best family ~{min} min/yr");
}

// ---------------------------------------------------------------------
// Fig. 7: scientific application.
// ---------------------------------------------------------------------

fn fig7_best(req_hours: f64) -> EvaluatedDesign {
    let fx = scientific_fx();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&fx.infrastructure, &fx.service, &fx.catalog, &engine);
    let options = SearchOptions {
        max_spares: 3,
        ..SearchOptions::default()
    }
    .with_pin("maintenanceA", "level", ParamValue::Level("bronze".into()))
    .with_pin("maintenanceB", "level", ParamValue::Level("bronze".into()));
    search_job_tier(
        &ctx,
        "computation",
        Duration::from_hours(req_hours),
        &options,
    )
    .unwrap()
    .best()
    .cloned()
    .unwrap_or_else(|| panic!("requirement {req_hours} h should be feasible"))
}

#[test]
fn fig7_resource_type_switches_with_requirement() {
    // Loose deadline -> cheap machineA nodes (rH); tight deadline -> the
    // 16-way machineB (rI).
    let loose = fig7_best(500.0);
    assert_eq!(loose.design().resource().as_str(), "rH");
    let tight = fig7_best(3.0);
    assert_eq!(tight.design().resource().as_str(), "rI");
}

#[test]
fn fig7_node_count_decreases_as_requirement_relaxes() {
    let tight = fig7_best(30.0);
    let loose = fig7_best(300.0);
    assert_eq!(tight.design().resource().as_str(), "rH");
    assert_eq!(loose.design().resource().as_str(), "rH");
    assert!(
        tight.design().n_active() > loose.design().n_active(),
        "{} vs {}",
        tight.design().n_active(),
        loose.design().n_active()
    );
}

#[test]
fn fig7_checkpoint_interval_grows_as_requirement_relaxes() {
    let interval =
        |e: &EvaluatedDesign| match e.design().setting("checkpoint", "checkpoint_interval") {
            Some(ParamValue::Duration(d)) => d.minutes(),
            other => panic!("missing checkpoint interval: {other:?}"),
        };
    let tight = fig7_best(20.0);
    let loose = fig7_best(500.0);
    assert!(
        interval(&tight) < interval(&loose),
        "{} vs {} minutes",
        interval(&tight),
        interval(&loose)
    );
}

#[test]
fn fig7_storage_location_switches_to_peer_at_scale() {
    // Small clusters checkpoint to central storage; large clusters hit the
    // central bottleneck and switch to peer storage.
    let storage = |e: &EvaluatedDesign| match e.design().setting("checkpoint", "storage_location") {
        Some(ParamValue::Level(l)) => l.clone(),
        other => panic!("missing storage location: {other:?}"),
    };
    let small = fig7_best(500.0); // few nodes
    assert!(small.design().n_active() < 30);
    assert_eq!(storage(&small), "central");
    // A 20-hour deadline forces a large machineA cluster (the per-node
    // central-storage checkpoint cost grows as n/3 past 30 nodes and
    // overtakes peer storage's flat cost at n = 60).
    let large = fig7_best(20.0);
    assert_eq!(large.design().resource().as_str(), "rH");
    assert!(
        large.design().n_active() > 60,
        "n = {}",
        large.design().n_active()
    );
    assert_eq!(storage(&large), "peer");
}

#[test]
fn fig7_cost_is_monotone_in_the_requirement() {
    let mut last_cost = f64::INFINITY;
    for req in [5.0, 20.0, 100.0, 500.0] {
        let best = fig7_best(req);
        let cost = best.cost().dollars();
        assert!(
            cost <= last_cost * 1.0001,
            "tighter requirement {req} should cost at least as much: {cost} vs {last_cost}"
        );
        last_cost = cost;
    }
}

#[test]
fn fig7_spares_appear_on_large_clusters() {
    // "the number of spare resources increases as the number of total
    // resources increases": at scale, hard-failure repairs (38 h) are so
    // frequent that spares pay for themselves.
    let large = fig7_best(20.0);
    assert!(
        large.design().n_spare() >= 1,
        "large cluster should carry spares: {:?}",
        large.design()
    );
}

// ---------------------------------------------------------------------
// Fig. 8: cost of availability.
// ---------------------------------------------------------------------

#[test]
fn fig8_extra_cost_curves_are_non_increasing_in_downtime() {
    let fx = ecommerce_fx();
    for load in [400.0, 1600.0] {
        let frontier = frontier_at(&fx, load);
        let base = frontier[0].cost();
        let mut last_extra = f64::INFINITY;
        for budget in [1.0, 10.0, 100.0, 1000.0] {
            let extra = frontier
                .iter()
                .find(|e| e.annual_downtime().minutes() <= budget)
                .map(|e| (e.cost() - base).dollars());
            if let Some(extra) = extra {
                assert!(
                    extra <= last_extra,
                    "load {load}: relaxing to {budget} min should not cost more"
                );
                last_extra = extra;
            }
        }
    }
}

#[test]
fn fig8_availability_costs_more_at_higher_load() {
    // Each curve in Fig. 8 sits higher for higher loads: covering more
    // machines with contracts/redundancy costs more.
    let fx = ecommerce_fx();
    let extra_cost = |load: f64, budget_mins: f64| -> f64 {
        let frontier = frontier_at(&fx, load);
        let base = frontier[0].cost();
        frontier
            .iter()
            .find(|e| e.annual_downtime().minutes() <= budget_mins)
            .map(|e| (e.cost() - base).dollars())
            .expect("budget reachable")
    };
    assert!(extra_cost(3200.0, 10.0) > extra_cost(400.0, 10.0));
    assert!(extra_cost(1600.0, 100.0) > extra_cost(400.0, 100.0));
}

#[test]
fn fig8_small_relaxation_can_save_big() {
    // "slightly relaxing the downtime requirement can significantly reduce
    // the cost overhead": the frontier has large cost steps.
    let frontier = frontier_at(&ecommerce_fx(), 1600.0);
    let mut largest_step = 0.0_f64;
    for pair in frontier.windows(2) {
        let step = (pair[1].cost() - pair[0].cost()).dollars();
        largest_step = largest_step.max(step);
    }
    assert!(
        largest_step > 1000.0,
        "largest frontier cost step: {largest_step}"
    );
}
