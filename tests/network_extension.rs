//! Integration test of the network/shared-subsystem extension (the
//! paper's §7 future work): compose the designed e-commerce service with a
//! LAN whose switches are shared series elements, and verify the combined
//! availability accounting.

use aved::avail::{combine_series, SharedSubsystem, TierAvailability};
use aved::scenario;
use aved::search::{search_service, CachingEngine, EvalContext, SearchOptions};
use aved::units::{Duration, Rate};
use aved::DecompositionEngine;

fn designed_tiers() -> Vec<TierAvailability> {
    let infrastructure = scenario::infrastructure().unwrap();
    let service = scenario::ecommerce().unwrap();
    let catalog = scenario::catalog();
    let inner = DecompositionEngine::default();
    let engine = CachingEngine::new(&inner);
    let ctx = EvalContext::new(&infrastructure, &service, &catalog, &engine);
    let options = SearchOptions {
        max_extra_active: 1,
        max_spares: 1,
        ..SearchOptions::default()
    };
    let design = search_service(&ctx, 800.0, Duration::from_mins(500.0), &options)
        .unwrap()
        .expect("feasible");
    design.tiers().iter().map(|t| *t.availability()).collect()
}

#[test]
fn single_switch_dominates_a_well_designed_service() {
    let tiers = designed_tiers();
    let service_only = combine_series(&tiers);

    // One switch, year-scale MTBF, 8-hour replacement: ~240 min/yr on its
    // own — worse than the designed service.
    let lan = SharedSubsystem::new("lan", 1, 1)
        .with_failure(Duration::from_days(365.0 * 2.0), Duration::from_hours(8.0))
        .evaluate()
        .unwrap();
    let mut with_lan = tiers.clone();
    with_lan.push(lan);
    let combined = combine_series(&with_lan);

    assert!(combined.unavailability() > service_only.unavailability());
    let lan_share = lan.annual_downtime().minutes()
        / (service_only.annual_downtime().minutes() + lan.annual_downtime().minutes());
    assert!(
        lan_share > 0.2,
        "an unduplexed switch should contribute a visible share, got {lan_share}"
    );
}

#[test]
fn duplexed_switches_restore_the_service_budget() {
    let tiers = designed_tiers();
    let service_only = combine_series(&tiers);

    let duplex = SharedSubsystem::new("lan", 2, 1)
        .with_failure(Duration::from_days(365.0 * 2.0), Duration::from_hours(8.0))
        .evaluate()
        .unwrap();
    let mut with_lan = tiers.clone();
    with_lan.push(duplex);
    let combined = combine_series(&with_lan);

    // Duplexing makes the network contribution negligible (< 1% extra).
    assert!(
        combined.annual_downtime().minutes() < service_only.annual_downtime().minutes() * 1.01,
        "duplexed LAN added {} vs {} min",
        combined.annual_downtime().minutes(),
        service_only.annual_downtime().minutes()
    );
}

#[test]
fn series_composition_is_order_invariant() {
    let tiers = designed_tiers();
    let lan = SharedSubsystem::new("lan", 2, 1)
        .with_failure(Duration::from_days(500.0), Duration::from_hours(4.0))
        .evaluate()
        .unwrap();

    let mut front = vec![lan];
    front.extend(tiers.iter().copied());
    let mut back = tiers.clone();
    back.push(lan);

    let a = combine_series(&front);
    let b = combine_series(&back);
    assert!((a.unavailability() - b.unavailability()).abs() < 1e-15);
    assert!(
        (a.down_event_rate().per_hour_value() - b.down_event_rate().per_hour_value()).abs() < 1e-15
    );
}

#[test]
fn empty_and_perfect_elements_are_neutral() {
    let tiers = designed_tiers();
    let base = combine_series(&tiers);
    let mut padded = tiers.clone();
    padded.push(TierAvailability::new(0.0, Rate::ZERO));
    let with_perfect = combine_series(&padded);
    assert!((base.unavailability() - with_perfect.unavailability()).abs() < 1e-15);
}
