//! End-to-end test of MTBF-modifying mechanisms: software rejuvenation.
//!
//! The paper's introduction lists "the use of software rejuvenation
//! techniques" among the design dimensions, and §3.1.2 names MTBF among
//! the attributes mechanisms may modify. This test builds a service whose
//! application software ages (poor MTBF without rejuvenation) and checks
//! that the design engine buys rejuvenation exactly when the downtime
//! budget makes it worthwhile.

use aved::model::{
    ComponentType, DurationSpec, EffectValue, FailureMode, FailureScope, Infrastructure, Mechanism,
    NActiveSpec, ParamRange, ParamValue, Parameter, PerfRef, ResourceComponent, ResourceOption,
    ResourceType, Service, Sizing, Tier,
};
use aved::perf::{Catalog, PerfFunction};
use aved::units::{Duration, Money};
use aved::{Aved, SearchOptions, ServiceRequirement};

/// An aging app server: without rejuvenation it wedges every 10 days;
/// nightly rejuvenation stretches that to 90 days, weekly to 40, at a
/// per-instance operational cost.
fn infrastructure() -> Infrastructure {
    Infrastructure::new()
        .with_component(
            ComponentType::new("box")
                .with_costs(Money::from_dollars(900.0), Money::from_dollars(1000.0))
                .with_failure_mode(FailureMode::new(
                    "hard",
                    Duration::from_days(800.0),
                    Duration::from_hours(2.0),
                    Duration::from_mins(2.0),
                )),
        )
        .with_component(
            ComponentType::new("agingapp").with_failure_mode(FailureMode::new(
                "wedge",
                DurationSpec::FromMechanism("rejuvenation".into()),
                Duration::ZERO,
                Duration::from_secs(30.0),
            )),
        )
        .with_mechanism(
            Mechanism::new("rejuvenation")
                .with_param(Parameter::new(
                    "schedule",
                    ParamRange::Levels(vec!["none".into(), "weekly".into(), "nightly".into()]),
                ))
                .with_cost_table(
                    "schedule",
                    vec![
                        Money::ZERO,
                        Money::from_dollars(120.0),
                        Money::from_dollars(400.0),
                    ],
                )
                .with_mtbf_effect(EffectValue::Table {
                    param: "schedule".into(),
                    values: vec![
                        Duration::from_days(10.0),
                        Duration::from_days(40.0),
                        Duration::from_days(90.0),
                    ],
                }),
        )
        .with_resource(
            ResourceType::new("node", Duration::ZERO)
                .with_component(ResourceComponent::new(
                    "box",
                    None,
                    Duration::from_mins(1.0),
                ))
                .with_component(ResourceComponent::new(
                    "agingapp",
                    Some("box".into()),
                    Duration::from_mins(5.0),
                )),
        )
}

fn service() -> Service {
    Service::new("aging").with_tier(Tier::new("app").with_option(ResourceOption::new(
        "node",
        Sizing::Dynamic,
        FailureScope::Resource,
        NActiveSpec::Arithmetic {
            min: 1,
            max: 50,
            step: 1,
        },
        PerfRef::Named("node_perf".into()),
    )))
}

fn engine() -> Aved {
    let mut catalog = Catalog::new();
    catalog.insert_perf("node_perf", PerfFunction::linear(100.0));
    Aved::new(infrastructure())
        .with_catalog(catalog)
        .with_search_options(SearchOptions {
            max_extra_active: 2,
            max_spares: 1,
            ..SearchOptions::default()
        })
}

fn schedule_of(report: &aved::DesignReport) -> String {
    report.design().tiers()[0]
        .setting("rejuvenation", "schedule")
        .map(ToString::to_string)
        .expect("schedule is always set")
}

#[test]
fn infrastructure_with_mtbf_mechanism_validates() {
    infrastructure().validate().unwrap();
}

#[test]
fn loose_budget_skips_rejuvenation() {
    // Wedges cost ~5.5 min each, every 10 days per node: ~400 min/yr for
    // two nodes. A 5000-minute budget doesn't justify paying for it.
    let report = engine()
        .design(
            &service(),
            &ServiceRequirement::enterprise(200.0, Duration::from_mins(5000.0)),
        )
        .unwrap()
        .expect("feasible");
    assert_eq!(schedule_of(&report), "none");
}

#[test]
fn tight_budget_buys_rejuvenation() {
    // At a 60-minute budget with m = n = 2, app wedges alone exceed the
    // budget without rejuvenation; the $400 nightly schedule is far cheaper
    // than extra machines.
    let report = engine()
        .design(
            &service(),
            &ServiceRequirement::enterprise(200.0, Duration::from_mins(220.0)),
        )
        .unwrap()
        .expect("feasible");
    assert_ne!(schedule_of(&report), "none");
    assert!(report.annual_downtime().unwrap() <= Duration::from_mins(220.0));
}

#[test]
fn rejuvenation_levels_trade_cost_for_downtime() {
    // Evaluate the same design at each schedule directly.
    use aved::avail::{derive_tier_model, AvailabilityEngine, CtmcEngine};
    use aved::model::TierDesign;
    let infra = infrastructure();
    let eval = |schedule: &str| {
        let td = TierDesign::new("app", "node", 2, 0).with_setting(
            "rejuvenation",
            "schedule",
            ParamValue::Level(schedule.into()),
        );
        let model =
            derive_tier_model(&infra, &td, Sizing::Dynamic, FailureScope::Resource, 2).unwrap();
        CtmcEngine::default()
            .evaluate(&model)
            .unwrap()
            .annual_downtime()
    };
    let none = eval("none");
    let weekly = eval("weekly");
    let nightly = eval("nightly");
    assert!(
        none > weekly && weekly > nightly,
        "{none} {weekly} {nightly}"
    );
}

#[test]
fn spec_round_trips_mtbf_delegation() {
    let infra = infrastructure();
    let text = aved::spec::write_infrastructure(&infra);
    assert!(text.contains("mtbf=<rejuvenation>"), "text:\n{text}");
    assert!(
        text.contains("mtbf(schedule)=[10d 40d 90d]"),
        "text:\n{text}"
    );
    let reparsed = aved::spec::parse_infrastructure(&text).unwrap();
    assert_eq!(infra, reparsed);
}
