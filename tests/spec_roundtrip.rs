//! Integration tests: the specification language round-trips the bundled
//! paper models and randomly-generated models.

use aved::model::{
    ComponentType, DurationSpec, EffectValue, FailureMode, Infrastructure, Mechanism, ParamRange,
    Parameter, ResourceComponent, ResourceType,
};
use aved::scenario;
use aved::spec::{parse_infrastructure, parse_services, write_infrastructure, write_service};
use aved::units::{Duration, Money};
use proptest::prelude::*;

#[test]
fn bundled_infrastructure_round_trips() {
    let infra = scenario::infrastructure().unwrap();
    let text = write_infrastructure(&infra);
    let reparsed = parse_infrastructure(&text).unwrap();
    assert_eq!(infra, reparsed);
}

#[test]
fn bundled_services_round_trip() {
    for svc in [
        scenario::ecommerce().unwrap(),
        scenario::scientific().unwrap(),
    ] {
        let text = write_service(&svc);
        let reparsed = aved::spec::parse_service(&text).unwrap();
        assert_eq!(svc, reparsed, "service {}", svc.name());
    }
}

#[test]
fn combined_service_document_parses() {
    let both = format!(
        "{}\n{}",
        scenario::ECOMMERCE_SPEC,
        scenario::SCIENTIFIC_SPEC
    );
    let services = parse_services(&both).unwrap();
    assert_eq!(services.len(), 2);
}

#[test]
fn paper_figure3_values_survive_the_round_trip() {
    let infra = scenario::infrastructure().unwrap();
    let reparsed = parse_infrastructure(&write_infrastructure(&infra)).unwrap();
    let machine_b = reparsed.component("machineB").unwrap();
    assert_eq!(machine_b.cost_active(), Money::from_dollars(93_500.0));
    assert_eq!(
        machine_b.failure_modes()[0].mtbf(),
        Some(Duration::from_days(1300.0))
    );
    let maint_b = reparsed.mechanism("maintenanceB").unwrap();
    let settings: std::collections::BTreeMap<_, _> = [(
        (
            aved::model::MechanismName::new("maintenanceB"),
            aved::model::ParamName::new("level"),
        ),
        aved::model::ParamValue::Level("platinum".into()),
    )]
    .into_iter()
    .collect();
    assert_eq!(
        maint_b.resolve_cost(&settings).unwrap(),
        Money::from_dollars(25_300.0)
    );
    assert_eq!(
        maint_b.resolve_mttr(&settings).unwrap(),
        Some(Duration::from_hours(6.0))
    );
}

// ---------------------------------------------------------------------
// Property tests: random infrastructures round-trip through the writer
// and parser.
// ---------------------------------------------------------------------

fn arb_duration() -> impl Strategy<Value = Duration> {
    // Whole seconds/minutes/hours/days so the Display form is exact.
    prop_oneof![
        (1_u32..600).prop_map(|s| Duration::from_secs(f64::from(s))),
        (1_u32..600).prop_map(|m| Duration::from_mins(f64::from(m))),
        (1_u32..100).prop_map(|h| Duration::from_hours(f64::from(h))),
        (1_u32..2000).prop_map(|d| Duration::from_days(f64::from(d))),
    ]
}

fn arb_name(prefix: &'static str) -> impl Strategy<Value = String> {
    (0_u32..1000).prop_map(move |i| format!("{prefix}{i}"))
}

fn arb_component() -> impl Strategy<Value = ComponentType> {
    (
        arb_name("comp"),
        0_u32..100_000,
        0_u32..100_000,
        proptest::collection::vec((arb_name("mode"), arb_duration(), arb_duration()), 1..4),
    )
        .prop_map(|(name, ci, ca, modes)| {
            let mut c = ComponentType::new(name).with_costs(
                Money::from_dollars(f64::from(ci)),
                Money::from_dollars(f64::from(ca)),
            );
            for (i, (mode_name, mtbf, detect)) in modes.into_iter().enumerate() {
                c = c.with_failure_mode(FailureMode::new(
                    format!("{mode_name}_{i}"),
                    mtbf,
                    Duration::ZERO,
                    detect,
                ));
            }
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_components_round_trip(components in proptest::collection::vec(arb_component(), 1..6)) {
        let mut infra = Infrastructure::new();
        for c in components {
            infra = infra.with_component(c);
        }
        let text = write_infrastructure(&infra);
        let reparsed = parse_infrastructure(&text).unwrap();
        prop_assert_eq!(infra, reparsed);
    }

    #[test]
    fn random_mechanisms_round_trip(
        levels in proptest::collection::vec(arb_name("lvl"), 1..5),
        costs_seed in 0_u32..10_000,
        mttrs in proptest::collection::vec(arb_duration(), 1..5),
    ) {
        let n = levels.len().min(mttrs.len());
        let levels: Vec<String> = levels.into_iter().take(n)
            .enumerate().map(|(i, l)| format!("{l}_{i}")).collect();
        let mttrs: Vec<Duration> = mttrs.into_iter().take(n).collect();
        let costs: Vec<Money> = (0..n)
            .map(|i| Money::from_dollars(f64::from(costs_seed + i as u32)))
            .collect();
        let mech = Mechanism::new("m")
            .with_param(Parameter::new("level", ParamRange::Levels(levels)))
            .with_cost_table("level", costs)
            .with_mttr_effect(EffectValue::Table { param: "level".into(), values: mttrs });
        let infra = Infrastructure::new().with_mechanism(mech);
        let text = write_infrastructure(&infra);
        let reparsed = parse_infrastructure(&text).unwrap();
        prop_assert_eq!(infra, reparsed);
    }

    #[test]
    fn random_resources_round_trip(
        startups in proptest::collection::vec(arb_duration(), 1..5),
        reconfig in arb_duration(),
    ) {
        let mut infra = Infrastructure::new();
        let mut resource = ResourceType::new("r0", reconfig);
        for (i, s) in startups.iter().enumerate() {
            let name = format!("c{i}");
            infra = infra.with_component(
                ComponentType::new(name.as_str()).with_failure_mode(FailureMode::new(
                    "soft",
                    Duration::from_days(30.0),
                    Duration::ZERO,
                    Duration::ZERO,
                )),
            );
            let depend = if i == 0 { None } else { Some(format!("c{}", i - 1).into()) };
            resource = resource.with_component(ResourceComponent::new(name, depend, *s));
        }
        let infra = infra.with_resource(resource);
        let text = write_infrastructure(&infra);
        let reparsed = parse_infrastructure(&text).unwrap();
        prop_assert_eq!(infra, reparsed);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_text(text in "\\PC{0,200}") {
        let _ = parse_infrastructure(&text);
        let _ = parse_services(&text);
    }

    #[test]
    fn duration_spec_forms_round_trip(d in arb_duration(), use_mech in prop::bool::ANY) {
        let repair: DurationSpec = if use_mech {
            DurationSpec::FromMechanism("fix".into())
        } else {
            DurationSpec::Fixed(d)
        };
        let mut infra = Infrastructure::new().with_component(
            ComponentType::new("x").with_failure_mode(FailureMode::new(
                "hard",
                Duration::from_days(100.0),
                repair,
                Duration::ZERO,
            )),
        );
        if use_mech {
            infra = infra.with_mechanism(
                Mechanism::new("fix")
                    .with_param(Parameter::new("level", ParamRange::Levels(vec!["a".into()])))
                    .with_mttr_effect(EffectValue::Table {
                        param: "level".into(),
                        values: vec![Duration::from_hours(1.0)],
                    }),
            );
        }
        let text = write_infrastructure(&infra);
        let reparsed = parse_infrastructure(&text).unwrap();
        prop_assert_eq!(infra, reparsed);
    }
}
