//! End-to-end tests of the `aved` command-line binary.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_aved"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn design_on_paper_scenario() {
    let out = run(&[
        "design",
        "--paper-ecommerce",
        "--load",
        "400",
        "--max-downtime",
        "1000m",
        "--max-extra",
        "1",
        "--max-spares",
        "1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("minimum-cost design"));
    assert!(text.contains("expected annual downtime"));
    assert!(text.contains("application: r"));
}

#[test]
fn design_with_requirement_file_and_explain() {
    let dir = std::env::temp_dir().join("aved-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let req = dir.join("req.aved");
    std::fs::write(
        &req,
        "requirement=enterprise throughput=400 downtime=800m\n",
    )
    .unwrap();
    let out = run(&[
        "design",
        "--paper-ecommerce",
        "--requirement",
        req.to_str().unwrap(),
        "--max-extra",
        "1",
        "--max-spares",
        "1",
        "--explain",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("Aved design report"));
    assert!(text.contains("downtime contributions"));
}

#[test]
fn job_design_with_pins() {
    let out = run(&[
        "design",
        "--paper-scientific",
        "--max-execution-time",
        "300h",
        "--pin",
        "maintenanceA.level=bronze",
        "--pin",
        "maintenanceB.level=bronze",
        "--max-spares",
        "1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("expected job completion"));
    assert!(text.contains("computation: rH"));
}

#[test]
fn check_and_dump_bundled_files() {
    let out = run(&[
        "check",
        "--infrastructure",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../data/infrastructure.aved"
        ),
        "--service",
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../data/ecommerce.aved"),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("infrastructure OK"));
    assert!(stdout(&out).contains("service ecommerce OK"));

    let out = run(&[
        "dump",
        "--infrastructure",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../data/infrastructure.aved"
        ),
    ]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("component=machineA"));
    assert!(stdout(&out).contains("resource=rI"));
}

#[test]
fn export_markov_produces_sharpe_model() {
    let out = run(&[
        "export-markov",
        "--infrastructure",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../data/infrastructure.aved"
        ),
        "--resource",
        "rC",
        "--active",
        "2",
        "--min",
        "2",
        "--spares",
        "1",
        "--pin",
        "maintenanceA.level=gold",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("markov tier"));
    assert!(text.contains("failure_mode=machineA/hard"));
    assert!(text.contains("reward"));
}

#[test]
fn sweep_prints_a_frontier() {
    let out = run(&[
        "sweep",
        "--paper-ecommerce",
        "--tier",
        "application",
        "--load",
        "800",
        "--max-extra",
        "1",
        "--max-spares",
        "1",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("cost/downtime frontier"));
    assert!(text.contains("maintenanceA.level=bronze"));
    // Frontier rows are cost-ascending.
    let costs: Vec<f64> = text
        .lines()
        .skip(2)
        .filter_map(|l| l.split_whitespace().next())
        .filter_map(|c| c.parse().ok())
        .collect();
    assert!(costs.len() >= 3);
    assert!(costs.windows(2).all(|w| w[0] <= w[1]), "costs: {costs:?}");
}

#[test]
fn bad_usage_exits_nonzero_with_usage() {
    let out = run(&["design", "--paper-ecommerce"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage"));

    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown command"));

    let out = run(&[]);
    assert!(!out.status.success());
}

#[test]
fn missing_file_is_a_clean_error() {
    let out = run(&["check", "--infrastructure", "/nonexistent/infra.aved"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("/nonexistent/infra.aved"));
}
